"""Unit tests for the management-plane database (schema, transactions,
monitors)."""

import pytest

from repro.errors import SchemaError, TransactionError
from repro.mgmt.database import Database
from repro.mgmt.monitor import MonitorSpec, replay
from repro.mgmt.schema import (
    ColumnSchema,
    ColumnType,
    DatabaseSchema,
    TableSchema,
    simple_schema,
)


def make_db():
    schema = DatabaseSchema(
        "net",
        [
            TableSchema(
                "Port",
                [
                    ColumnSchema("name", ColumnType("string")),
                    ColumnSchema("vlan", ColumnType("integer")),
                    ColumnSchema("up", ColumnType("boolean")),
                    ColumnSchema(
                        "trunks", ColumnType("integer", min=0, max="unlimited")
                    ),
                    ColumnSchema(
                        "external_ids",
                        ColumnType("string", "string", min=0, max="unlimited"),
                    ),
                ],
                indexes=[("name",)],
            ),
            TableSchema(
                "Switch",
                [
                    ColumnSchema("name", ColumnType("string")),
                    ColumnSchema(
                        "mgmt_ip", ColumnType("string", min=0, max=1)
                    ),
                ],
            ),
        ],
    )
    return Database(schema)


class TestSchema:
    def test_json_round_trip(self):
        db = make_db()
        data = db.schema.to_json()
        back = DatabaseSchema.from_json(data)
        assert back.to_json() == data

    def test_bad_atomic_type(self):
        with pytest.raises(SchemaError):
            ColumnType("blob")

    def test_map_requires_max_gt_one(self):
        with pytest.raises(SchemaError):
            ColumnType("string", "string", max=1)

    def test_underscore_column_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSchema("_uuid", ColumnType("string"))

    def test_simple_schema_builder(self):
        schema = simple_schema(
            "db", {"T": {"a": "string", "b": "?integer", "c": "*string"}}
        )
        t = schema.table("T")
        assert t.column("a").type.is_scalar
        assert t.column("b").type.is_optional
        assert t.column("c").type.is_set

    def test_index_unknown_column(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "T",
                [ColumnSchema("a", ColumnType("string"))],
                indexes=[("nope",)],
            )


class TestInsertSelect:
    def test_insert_returns_uuid(self):
        db = make_db()
        (result,) = db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "p1", "vlan": 10}}]
        )
        assert "uuid" in result
        row = db.get_row("Port", result["uuid"])
        assert row["name"] == "p1"
        assert row["vlan"] == 10

    def test_defaults_filled(self):
        db = make_db()
        (result,) = db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "p1"}}]
        )
        row = db.get_row("Port", result["uuid"])
        assert row["vlan"] == 0
        assert row["up"] is False
        assert row["trunks"] == frozenset()
        assert row["external_ids"] == {}

    def test_select_with_where(self):
        db = make_db()
        db.transact(
            [
                {"op": "insert", "table": "Port", "row": {"name": "p1", "vlan": 1}},
                {"op": "insert", "table": "Port", "row": {"name": "p2", "vlan": 2}},
            ]
        )
        (result,) = db.transact(
            [{"op": "select", "table": "Port", "where": [["vlan", ">", 1]]}]
        )
        assert [r["name"] for r in result["rows"]] == ["p2"]

    def test_select_columns_projection(self):
        db = make_db()
        db.transact([{"op": "insert", "table": "Port", "row": {"name": "p1"}}])
        (result,) = db.transact(
            [{"op": "select", "table": "Port", "columns": ["name"]}]
        )
        assert result["rows"] == [{"name": "p1"}]

    def test_insert_bad_column(self):
        db = make_db()
        with pytest.raises(TransactionError):
            db.transact(
                [{"op": "insert", "table": "Port", "row": {"nope": 1}}]
            )

    def test_insert_bad_type(self):
        db = make_db()
        with pytest.raises(TransactionError):
            db.transact(
                [{"op": "insert", "table": "Port", "row": {"vlan": "ten"}}]
            )

    def test_unknown_table(self):
        db = make_db()
        with pytest.raises(SchemaError):
            db.transact([{"op": "insert", "table": "Nope", "row": {}}])

    def test_named_uuid_reference(self):
        db = make_db()
        results = db.transact(
            [
                {
                    "op": "insert",
                    "table": "Switch",
                    "row": {"name": "s1"},
                    "uuid-name": "sw",
                },
                {
                    "op": "insert",
                    "table": "Port",
                    "row": {
                        "name": "p1",
                        "external_ids": {"switch": ["named-uuid", "sw"]},
                    },
                },
            ]
        )
        port = db.get_row("Port", results[1]["uuid"])
        assert port["external_ids"]["switch"] == results[0]["uuid"]


class TestUpdateMutateDelete:
    def _insert(self, db, name, vlan=0):
        (r,) = db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": name, "vlan": vlan}}]
        )
        return r["uuid"]

    def test_update(self):
        db = make_db()
        uuid = self._insert(db, "p1", 1)
        (result,) = db.transact(
            [
                {
                    "op": "update",
                    "table": "Port",
                    "where": [["_uuid", "==", uuid]],
                    "row": {"vlan": 42},
                }
            ]
        )
        assert result["count"] == 1
        assert db.get_row("Port", uuid)["vlan"] == 42

    def test_mutate_numeric(self):
        db = make_db()
        uuid = self._insert(db, "p1", 10)
        db.transact(
            [
                {
                    "op": "mutate",
                    "table": "Port",
                    "where": [["_uuid", "==", uuid]],
                    "mutations": [["vlan", "+=", 5]],
                }
            ]
        )
        assert db.get_row("Port", uuid)["vlan"] == 15

    def test_mutate_set_insert_delete(self):
        db = make_db()
        uuid = self._insert(db, "p1")
        db.transact(
            [
                {
                    "op": "mutate",
                    "table": "Port",
                    "where": [],
                    "mutations": [["trunks", "insert", [1, 2, 3]]],
                }
            ]
        )
        assert db.get_row("Port", uuid)["trunks"] == frozenset({1, 2, 3})
        db.transact(
            [
                {
                    "op": "mutate",
                    "table": "Port",
                    "where": [],
                    "mutations": [["trunks", "delete", 2]],
                }
            ]
        )
        assert db.get_row("Port", uuid)["trunks"] == frozenset({1, 3})

    def test_mutate_map(self):
        db = make_db()
        uuid = self._insert(db, "p1")
        db.transact(
            [
                {
                    "op": "mutate",
                    "table": "Port",
                    "where": [],
                    "mutations": [["external_ids", "insert", {"k": "v"}]],
                }
            ]
        )
        assert db.get_row("Port", uuid)["external_ids"] == {"k": "v"}

    def test_delete(self):
        db = make_db()
        uuid = self._insert(db, "p1")
        (result,) = db.transact(
            [{"op": "delete", "table": "Port", "where": [["_uuid", "==", uuid]]}]
        )
        assert result["count"] == 1
        assert db.get_row("Port", uuid) is None

    def test_where_includes_on_set(self):
        db = make_db()
        self._insert(db, "p1")
        db.transact(
            [
                {
                    "op": "mutate",
                    "table": "Port",
                    "where": [],
                    "mutations": [["trunks", "insert", [7]]],
                }
            ]
        )
        (result,) = db.transact(
            [
                {
                    "op": "select",
                    "table": "Port",
                    "where": [["trunks", "includes", 7]],
                }
            ]
        )
        assert len(result["rows"]) == 1


class TestAtomicity:
    def test_failed_op_rolls_back_everything(self):
        db = make_db()
        with pytest.raises(TransactionError):
            db.transact(
                [
                    {"op": "insert", "table": "Port", "row": {"name": "p1"}},
                    {"op": "insert", "table": "Port", "row": {"bad": 1}},
                ]
            )
        assert db.count("Port") == 0

    def test_abort_rolls_back(self):
        db = make_db()
        with pytest.raises(TransactionError):
            db.transact(
                [
                    {"op": "insert", "table": "Port", "row": {"name": "p1"}},
                    {"op": "abort"},
                ]
            )
        assert db.count("Port") == 0

    def test_unique_index_enforced(self):
        db = make_db()
        db.transact([{"op": "insert", "table": "Port", "row": {"name": "p1"}}])
        with pytest.raises(TransactionError, match="index"):
            db.transact(
                [{"op": "insert", "table": "Port", "row": {"name": "p1"}}]
            )
        assert db.count("Port") == 1

    def test_unique_index_within_transaction(self):
        db = make_db()
        with pytest.raises(TransactionError, match="index"):
            db.transact(
                [
                    {"op": "insert", "table": "Port", "row": {"name": "x"}},
                    {"op": "insert", "table": "Port", "row": {"name": "x"}},
                ]
            )

    def test_wait_satisfied(self):
        db = make_db()
        db.transact([{"op": "insert", "table": "Port", "row": {"name": "p1"}}])
        db.transact(
            [
                {
                    "op": "wait",
                    "table": "Port",
                    "where": [],
                    "until": "==",
                    "rows": [{"name": "p1"}],
                },
                {"op": "insert", "table": "Port", "row": {"name": "p2"}},
            ]
        )
        assert db.count("Port") == 2

    def test_wait_unsatisfied_aborts(self):
        db = make_db()
        with pytest.raises(TransactionError, match="wait"):
            db.transact(
                [
                    {
                        "op": "wait",
                        "table": "Port",
                        "where": [],
                        "until": "==",
                        "rows": [{"name": "ghost"}],
                    },
                    {"op": "insert", "table": "Port", "row": {"name": "p2"}},
                ]
            )
        assert db.count("Port") == 0

    def test_ops_in_txn_see_staged_state(self):
        db = make_db()
        results = db.transact(
            [
                {"op": "insert", "table": "Port", "row": {"name": "p1"}},
                {"op": "select", "table": "Port", "where": []},
            ]
        )
        assert len(results[1]["rows"]) == 1


class TestMonitors:
    def test_initial_snapshot(self):
        db = make_db()
        db.transact([{"op": "insert", "table": "Port", "row": {"name": "p1"}}])
        received = []
        _, initial = db.add_monitor(
            MonitorSpec.all_tables(db.schema), received.append
        )
        assert len(initial.table("Port")) == 1
        update = next(iter(initial.table("Port").values()))
        assert update.kind == "insert"
        assert update.new["name"] == "p1"

    def test_insert_notification(self):
        db = make_db()
        received = []
        db.add_monitor(MonitorSpec.all_tables(db.schema), received.append)
        db.transact([{"op": "insert", "table": "Port", "row": {"name": "p1"}}])
        assert len(received) == 1
        (update,) = received[0].table("Port").values()
        assert update.kind == "insert"

    def test_modify_notification_has_old_changed_columns(self):
        db = make_db()
        (r,) = db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "p1", "vlan": 1}}]
        )
        received = []
        db.add_monitor(MonitorSpec.all_tables(db.schema), received.append)
        db.transact(
            [
                {
                    "op": "update",
                    "table": "Port",
                    "where": [["_uuid", "==", r["uuid"]]],
                    "row": {"vlan": 2},
                }
            ]
        )
        (update,) = received[0].table("Port").values()
        assert update.kind == "modify"
        assert update.old == {"vlan": 1}
        assert update.new["vlan"] == 2
        assert update.new["name"] == "p1"

    def test_no_notification_for_noop_update(self):
        db = make_db()
        (r,) = db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "p1", "vlan": 1}}]
        )
        received = []
        db.add_monitor(MonitorSpec.all_tables(db.schema), received.append)
        db.transact(
            [
                {
                    "op": "update",
                    "table": "Port",
                    "where": [["_uuid", "==", r["uuid"]]],
                    "row": {"vlan": 1},
                }
            ]
        )
        assert received == []

    def test_column_filtered_monitor(self):
        db = make_db()
        (r,) = db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "p1", "vlan": 1}}]
        )
        received = []
        db.add_monitor(MonitorSpec({"Port": ["name"]}), received.append)
        # vlan change is invisible to this monitor.
        db.transact(
            [
                {
                    "op": "update",
                    "table": "Port",
                    "where": [["_uuid", "==", r["uuid"]]],
                    "row": {"vlan": 5},
                }
            ]
        )
        assert received == []

    def test_removed_monitor_not_notified(self):
        db = make_db()
        received = []
        monitor, _ = db.add_monitor(
            MonitorSpec.all_tables(db.schema), received.append
        )
        db.remove_monitor(monitor)
        db.transact([{"op": "insert", "table": "Port", "row": {"name": "p"}}])
        assert received == []

    def test_replay_reconstructs_database(self):
        db = make_db()
        received = []
        _, initial = db.add_monitor(
            MonitorSpec.all_tables(db.schema), received.append
        )
        db.transact([{"op": "insert", "table": "Port", "row": {"name": "a"}}])
        (r2,) = db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "b"}}]
        )
        db.transact(
            [
                {
                    "op": "update",
                    "table": "Port",
                    "where": [["name", "==", "a"]],
                    "row": {"vlan": 9},
                }
            ]
        )
        db.transact(
            [{"op": "delete", "table": "Port", "where": [["name", "==", "b"]]}]
        )
        state = replay(initial, received)
        expected = {
            uuid: row.values for uuid, row in
            ((r.uuid, r) for r in db.rows("Port"))
        }
        assert {u: dict(v) for u, v in state.get("Port", {}).items()} == {
            u: dict(v) for u, v in expected.items()
        }
