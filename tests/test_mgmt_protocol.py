"""Tests for the management wire protocol: framing, server/client,
monitors over TCP, and persistence."""

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolError, TransactionError
from repro.mgmt.client import ManagementClient
from repro.mgmt.database import Database
from repro.mgmt.jsonrpc import classify, decode_frames, encode_frame
from repro.mgmt.persist import Persister, restore
from repro.mgmt.schema import simple_schema
from repro.mgmt.server import ManagementServer


def make_db():
    return Database(
        simple_schema(
            "net",
            {
                "Port": {"name": "string", "vlan": "integer"},
                "Switch": {"name": "string"},
            },
        )
    )


class TestFraming:
    def test_round_trip_single(self):
        msg = {"method": "echo", "params": [1, "x"], "id": 7}
        messages, rest = decode_frames(encode_frame(msg))
        assert messages == [msg]
        assert rest == b""

    def test_round_trip_multiple_frames(self):
        buf = encode_frame({"id": 1}) + encode_frame({"id": 2})
        messages, rest = decode_frames(buf)
        assert [m["id"] for m in messages] == [1, 2]
        assert rest == b""

    def test_partial_frame_is_remainder(self):
        frame = encode_frame({"id": 1})
        messages, rest = decode_frames(frame[:-3])
        assert messages == []
        assert rest == frame[:-3]
        messages, rest = decode_frames(rest + frame[-3:])
        assert messages == [{"id": 1}]

    def test_oversized_frame_rejected(self):
        import struct

        bad = struct.pack(">I", 1 << 31) + b"x"
        with pytest.raises(ProtocolError):
            decode_frames(bad)

    def test_bad_json_rejected(self):
        import struct

        payload = b"not json"
        with pytest.raises(ProtocolError):
            decode_frames(struct.pack(">I", len(payload)) + payload)

    @given(st.lists(st.integers(0, 100), max_size=10), st.integers(1, 50))
    def test_arbitrary_chunking(self, ids, chunk_size):
        stream = b"".join(encode_frame({"id": i}) for i in ids)
        got = []
        buffer = b""
        for start in range(0, len(stream), chunk_size):
            buffer += stream[start : start + chunk_size]
            messages, buffer = decode_frames(buffer)
            got.extend(m["id"] for m in messages)
        assert got == ids

    def test_classify(self):
        assert classify({"method": "m", "params": [], "id": 1}) == "request"
        assert classify({"method": "m", "params": [], "id": None}) == "notification"
        assert classify({"result": 1, "error": None, "id": 1}) == "response"
        with pytest.raises(ProtocolError):
            classify({"nonsense": True})


@pytest.fixture()
def server():
    db = make_db()
    srv = ManagementServer(db).start()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    host, port = server.address
    c = ManagementClient(host, port)
    yield c
    c.close()


class TestClientServer:
    def test_echo(self, client):
        assert client.echo([1, "two"]) == [1, "two"]

    def test_get_schema(self, client):
        schema = client.get_schema()
        # Every database carries the reserved _Lease table (leader
        # election, repro.mgmt.lease) alongside the user's tables.
        assert set(schema.tables) == {"Port", "Switch", "_Lease"}

    def test_transact_insert_and_select(self, client):
        results = client.transact(
            [
                {"op": "insert", "table": "Port", "row": {"name": "p1", "vlan": 3}},
                {"op": "select", "table": "Port", "where": []},
            ]
        )
        assert "uuid" in results[0]
        assert results[1]["rows"][0]["name"] == "p1"

    def test_transact_error_propagates(self, client):
        with pytest.raises(TransactionError):
            client.transact([{"op": "insert", "table": "Nope", "row": {}}])

    def test_monitor_initial_and_updates(self, server, client):
        client.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "p0", "vlan": 0}}]
        )
        received = []
        event = threading.Event()

        def on_update(updates):
            received.append(updates)
            event.set()

        _, initial = client.monitor({"Port": None}, on_update)
        assert len(initial.table("Port")) == 1

        # A write through a *different* path (direct db) must reach us.
        server.db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "p1", "vlan": 5}}]
        )
        assert event.wait(5.0), "no update notification received"
        (update,) = received[0].table("Port").values()
        assert update.kind == "insert"
        assert update.new["name"] == "p1"

    def test_monitor_cancel_stops_updates(self, server, client):
        received = []
        monitor_id, _ = client.monitor({"Port": None}, received.append)
        client.monitor_cancel(monitor_id)
        server.db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "px", "vlan": 0}}]
        )
        client.echo(["sync"])  # round-trip to drain any in-flight updates
        assert received == []

    def test_two_clients_independent(self, server):
        host, port = server.address
        with ManagementClient(host, port) as c1, ManagementClient(host, port) as c2:
            got1, got2 = [], []
            e1, e2 = threading.Event(), threading.Event()
            c1.monitor({"Port": None}, lambda u: (got1.append(u), e1.set()))
            c2.monitor({"Switch": None}, lambda u: (got2.append(u), e2.set()))
            c1.transact(
                [{"op": "insert", "table": "Port", "row": {"name": "p", "vlan": 1}}]
            )
            assert e1.wait(5.0)
            assert not e2.wait(0.2)

    def test_concurrent_transactions(self, server):
        host, port = server.address

        def worker(n):
            with ManagementClient(host, port) as c:
                for i in range(10):
                    c.transact(
                        [
                            {
                                "op": "insert",
                                "table": "Port",
                                "row": {"name": f"w{n}-{i}", "vlan": i},
                            }
                        ]
                    )

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert server.db.count("Port") == 40


class TestPersistence:
    def test_snapshot_restore(self, tmp_path):
        db = make_db()
        persister = Persister(db, str(tmp_path))
        db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "p1", "vlan": 7}}]
        )
        persister.snapshot()
        persister.close()

        db2 = restore(str(tmp_path))
        rows = db2.rows("Port")
        assert len(rows) == 1
        assert rows[0]["name"] == "p1"
        assert rows[0]["vlan"] == 7

    def test_journal_replay_without_snapshot(self, tmp_path):
        db = make_db()
        persister = Persister(db, str(tmp_path))
        db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "a", "vlan": 1}}]
        )
        (r,) = db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "b", "vlan": 2}}]
        )
        db.transact(
            [{"op": "delete", "table": "Port", "where": [["name", "==", "a"]]}]
        )
        persister.close()

        db2 = restore(str(tmp_path), schema=db.schema)
        rows = db2.rows("Port")
        assert len(rows) == 1
        assert rows[0].uuid == r["uuid"]

    def test_journal_after_snapshot(self, tmp_path):
        db = make_db()
        persister = Persister(db, str(tmp_path))
        db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "a", "vlan": 1}}]
        )
        persister.compact()
        db.transact(
            [
                {
                    "op": "update",
                    "table": "Port",
                    "where": [["name", "==", "a"]],
                    "row": {"vlan": 42},
                }
            ]
        )
        persister.close()

        db2 = restore(str(tmp_path))
        assert db2.rows("Port")[0]["vlan"] == 42

    def test_restore_empty_dir_with_schema(self, tmp_path):
        db = restore(str(tmp_path), schema=make_db().schema)
        assert db.count("Port") == 0

    def test_restore_empty_dir_without_schema_fails(self, tmp_path):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            restore(str(tmp_path))
