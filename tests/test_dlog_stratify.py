"""Unit tests for dependency analysis and stratification."""

import pytest

from repro.dlog.parser import parse_program
from repro.dlog.stratify import rule_dependencies, stratify
from repro.errors import StratificationError


def strat_of(text):
    prog = parse_program(text)
    return stratify([r.name for r in prog.relations], prog.rules)


class TestRuleDependencies:
    def test_positive_and_negative(self):
        prog = parse_program("Out(x) :- A(x), not B(x).")
        deps = rule_dependencies(prog.rules[0])
        assert ("A", "positive") in deps
        assert ("B", "negative") in deps

    def test_aggregate_marks_body_negative(self):
        prog = parse_program(
            "Out(k, n) :- A(k, v), var n = Aggregate((k), count())."
        )
        deps = rule_dependencies(prog.rules[0])
        assert deps == [("A", "negative")]


class TestStratification:
    def test_linear_chain_order(self):
        strat = strat_of(
            """
            input relation A(x: bigint)
            relation B(x: bigint)
            output relation C(x: bigint)
            B(x) :- A(x).
            C(x) :- B(x).
            """
        )
        order = [scc[0] for scc in strat.order]
        assert order.index("A") < order.index("B") < order.index("C")
        assert not any(strat.recursive)

    def test_self_loop_is_recursive(self):
        strat = strat_of(
            """
            input relation E(a: bigint, b: bigint)
            output relation R(a: bigint, b: bigint)
            R(a, b) :- E(a, b).
            R(a, c) :- R(a, b), E(b, c).
            """
        )
        assert strat.is_recursive_relation("R")
        assert not strat.is_recursive_relation("E")

    def test_mutual_recursion_in_one_scc(self):
        strat = strat_of(
            """
            input relation S(x: bigint, y: bigint)
            output relation Even(x: bigint)
            output relation Odd(x: bigint)
            Odd(y) :- Even(x), S(x, y).
            Even(y) :- Odd(x), S(x, y).
            """
        )
        idx = strat.scc_of["Even"]
        assert strat.scc_of["Odd"] == idx
        assert strat.recursive[idx]

    def test_negation_below_recursion_allowed(self):
        strat = strat_of(
            """
            input relation E(a: bigint, b: bigint)
            input relation Down(a: bigint)
            output relation R(a: bigint)
            R(a) :- E(a, _), not Down(a).
            R(b) :- R(a), E(a, b), not Down(b).
            """
        )
        assert strat.is_recursive_relation("R")

    def test_negation_inside_cycle_rejected(self):
        with pytest.raises(StratificationError, match="negation"):
            strat_of(
                """
                input relation E(x: bigint)
                output relation A(x: bigint)
                output relation B(x: bigint)
                A(x) :- E(x), not B(x).
                B(x) :- A(x).
                """
            )

    def test_aggregation_inside_cycle_rejected(self):
        with pytest.raises(StratificationError):
            strat_of(
                """
                input relation E(a: bigint, b: bigint)
                output relation R(a: bigint, n: bigint)
                R(a, n) :- E(a, b), R(b, _), var n = Aggregate((a), count()).
                """
            )

    def test_large_chain_does_not_blow_stack(self):
        # The iterative Tarjan must handle deep dependency chains.
        n = 3000
        decls = ["input relation R0(x: bigint)"]
        rules = []
        for i in range(1, n):
            decls.append(f"relation R{i}(x: bigint)")
            rules.append(f"R{i}(x) :- R{i - 1}(x).")
        strat = strat_of("\n".join(decls + rules))
        assert len(strat.order) == n
