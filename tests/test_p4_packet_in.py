"""Packet-in via the CPU port: the punt-to-controller pattern."""

import pytest

from repro.p4.headers import ethernet
from repro.p4.ir import compile_p4
from repro.p4.simulator import Simulator
from repro.p4.tables import FieldMatch, TableEntry

PUNT_P4 = """
header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
struct headers_t { eth_t eth; }
struct meta_t { bit<1> x; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
         inout standard_metadata_t std) {
    state start { pkt.extract(hdr.eth); transition accept; }
}

control Ing(inout headers_t hdr, inout meta_t m,
            inout standard_metadata_t std) {
    action forward(bit<16> port) { std.egress_spec = port; }
    action punt() { std.egress_spec = 510; }
    table fwd {
        key = { std.ingress_port : exact; }
        actions = { forward; punt; }
        default_action = punt();
    }
    apply { fwd.apply(); }
}
"""

CPU_PORT = 510


@pytest.fixture()
def sim():
    return Simulator(compile_p4(PUNT_P4), n_ports=8, cpu_port=CPU_PORT)


def frame():
    return ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", payload=b"hi")


class TestPacketIn:
    def test_punted_packet_becomes_packet_in(self, sim):
        outputs = sim.inject(3, frame())
        assert outputs == []  # nothing egresses
        ((ingress, data),) = sim.drain_packet_ins()
        assert ingress == 3
        assert data == frame()

    def test_forwarded_packet_is_not_punted(self, sim):
        sim.table("fwd").insert(
            TableEntry([FieldMatch.exact(1)], "forward", [2])
        )
        outputs = sim.inject(1, frame())
        assert [p for p, _ in outputs] == [2]
        assert sim.drain_packet_ins() == []

    def test_callback_fires(self, sim):
        received = []
        sim.packet_in_callback = lambda port, data: received.append(port)
        sim.inject(5, frame())
        assert received == [5]

    def test_drain_clears(self, sim):
        sim.inject(1, frame())
        assert len(sim.drain_packet_ins()) == 1
        assert sim.drain_packet_ins() == []

    def test_without_cpu_port_high_port_drops(self):
        sim = Simulator(compile_p4(PUNT_P4), n_ports=8)  # no cpu_port
        assert sim.inject(1, frame()) == []
        assert sim.dropped == 1
        assert sim.packet_ins == []
