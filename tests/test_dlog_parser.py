"""Unit tests for the control-plane language parser."""

import pytest

from repro.dlog import ast as A
from repro.dlog import types as T
from repro.dlog.parser import parse_program, parse_type
from repro.errors import ParseError


class TestRelationDecls:
    def test_input_relation(self):
        prog = parse_program("input relation Port(id: bit<32>, name: string)")
        (rel,) = prog.relations
        assert rel.role == "input"
        assert rel.name == "Port"
        assert rel.columns == [("id", T.TBit(32)), ("name", T.STRING)]

    def test_output_relation(self):
        prog = parse_program("output relation Out(x: bigint)")
        assert prog.relations[0].role == "output"

    def test_internal_relation(self):
        prog = parse_program("relation Mid(x: bool)")
        assert prog.relations[0].role == "internal"

    def test_zero_column_relation(self):
        prog = parse_program("relation Unit()")
        assert prog.relations[0].arity == 0


class TestTypes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("bool", T.BOOL),
            ("string", T.STRING),
            ("bigint", T.BIGINT),
            ("float", T.FLOAT),
            ("bit<12>", T.TBit(12)),
            ("signed<64>", T.TSigned(64)),
            ("(bit<8>, string)", T.TTuple([T.TBit(8), T.STRING])),
            ("Vec<string>", T.TVec(T.STRING)),
            ("Map<string, bit<32>>", T.TMap(T.STRING, T.TBit(32))),
            ("Option<bool>", T.TUser("Option", [T.BOOL])),
        ],
    )
    def test_parse_type(self, text, expected):
        assert parse_type(text) == expected

    def test_vec_wrong_arity(self):
        with pytest.raises(ParseError):
            parse_type("Vec<bool, bool>")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_type("bool bool")


class TestTypedefs:
    def test_struct_typedef(self):
        prog = parse_program("typedef pair_t = Pair{a: bit<8>, b: string}")
        (td,) = prog.typedefs
        assert td.name == "pair_t"
        assert not td.is_union
        assert td.constructors[0].fields[0].name == "a"

    def test_union_typedef(self):
        prog = parse_program("typedef mode_t = Access | Trunk{native: bit<12>}")
        (td,) = prog.typedefs
        assert td.is_union
        assert [c.name for c in td.constructors] == ["Access", "Trunk"]

    def test_generic_typedef(self):
        prog = parse_program("typedef box_t<A> = Box{inner: A}")
        (td,) = prog.typedefs
        assert td.params == ("A",)


class TestRules:
    def test_fact(self):
        prog = parse_program('input relation R(x: bigint)\nR(1).')
        (rule,) = prog.rules
        assert rule.head.relation == "R"
        assert rule.body == []
        assert isinstance(rule.head.args[0], A.PLit)

    def test_simple_rule(self):
        prog = parse_program("Out(x) :- In(x).")
        (rule,) = prog.rules
        assert rule.head.relation == "Out"
        assert isinstance(rule.body[0], A.AtomItem)
        assert rule.body[0].atom.relation == "In"

    def test_join_rule(self):
        prog = parse_program("Label(n2, l) :- Label(n1, l), Edge(n1, n2).")
        (rule,) = prog.rules
        assert len(rule.body) == 2

    def test_negated_atom(self):
        prog = parse_program("Out(x) :- In(x), not Blocked(x).")
        assert isinstance(prog.rules[0].body[1], A.NegAtom)

    def test_guard(self):
        prog = parse_program("Out(x) :- In(x), x > 3.")
        guard = prog.rules[0].body[1]
        assert isinstance(guard, A.Guard)
        assert isinstance(guard.expr, A.BinOp)

    def test_not_guard_on_expression(self):
        prog = parse_program("Out(x) :- In(x), not x == 3.")
        assert isinstance(prog.rules[0].body[1], A.Guard)

    def test_assignment(self):
        prog = parse_program('Out(y) :- In(x), var y = x + 1.')
        item = prog.rules[0].body[1]
        assert isinstance(item, A.Assignment)
        assert isinstance(item.pattern, A.PVar)

    def test_tuple_destructuring_assignment(self):
        prog = parse_program("Out(a, b) :- In(p), var (a, b) = p.")
        item = prog.rules[0].body[1]
        assert isinstance(item, A.Assignment)
        assert isinstance(item.pattern, A.PTuple)

    def test_flatmap(self):
        prog = parse_program("Out(e) :- In(v), var e = FlatMap(v).")
        item = prog.rules[0].body[1]
        assert isinstance(item, A.FlatMapItem)
        assert item.var == "e"

    def test_aggregate(self):
        prog = parse_program(
            "PortCount(sw, n) :- Port(p, sw), var n = Aggregate((sw), count())."
        )
        item = prog.rules[0].body[1]
        assert isinstance(item, A.AggregateItem)
        assert item.group_by == ["sw"]
        assert item.func == "count"

    def test_aggregate_unknown_function_rejected(self):
        with pytest.raises(ParseError):
            parse_program("Out(n) :- In(x), var n = Aggregate((x), frobnicate(x)).")

    def test_wildcard_argument(self):
        prog = parse_program("Out(x) :- In(x, _).")
        assert isinstance(prog.rules[0].body[0].atom.args[1], A.PWildcard)

    def test_constant_argument(self):
        prog = parse_program('Out(x) :- In(x, "access").')
        arg = prog.rules[0].body[0].atom.args[1]
        assert isinstance(arg, A.PLit)
        assert arg.value == "access"

    def test_expression_argument(self):
        prog = parse_program("Out(x) :- In(x), Idx(x + 1).")
        arg = prog.rules[0].body[1].atom.args[0]
        assert isinstance(arg, A.PExpr)

    def test_constructor_pattern_argument(self):
        prog = parse_program("Out(n) :- In(Trunk{n}).")
        arg = prog.rules[0].body[0].atom.args[0]
        assert isinstance(arg, A.PStruct)
        assert arg.ctor == "Trunk"

    def test_missing_dot_is_error(self):
        with pytest.raises(ParseError):
            parse_program("Out(x) :- In(x)")


class TestExpressions:
    def _expr(self, text):
        prog = parse_program(f"Out(tmp) :- In(x), var tmp = {text}.")
        item = prog.rules[0].body[1]
        assert isinstance(item, A.Assignment)
        return item.expr

    def test_precedence_mul_over_add(self):
        e = self._expr("1 + 2 * 3")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_precedence_comparison_over_and(self):
        e = self._expr("x > 1 and x < 5")
        assert e.op == "and"
        assert e.left.op == ">"

    def test_parenthesized(self):
        e = self._expr("(1 + 2) * 3")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_field_access(self):
        e = self._expr("x.name")
        assert isinstance(e, A.Field)
        assert e.name == "name"

    def test_tuple_index(self):
        e = self._expr("x.0")
        assert isinstance(e, A.Field)
        assert e.name == "0"

    def test_method_call_sugar(self):
        e = self._expr("x.len()")
        assert isinstance(e, A.Call)
        assert e.func == "len"
        assert isinstance(e.args[0], A.Var)

    def test_function_call(self):
        e = self._expr("substr(x, 0, 3)")
        assert isinstance(e, A.Call)
        assert len(e.args) == 3

    def test_if_expression(self):
        e = self._expr('if (x > 0) "pos" else "neg"')
        assert isinstance(e, A.IfExpr)

    def test_if_else_if_chain(self):
        e = self._expr('if (x > 0) 1 else if (x == 0) 0 else 2')
        assert isinstance(e.els, A.IfExpr)

    def test_match_expression(self):
        e = self._expr('match (x) { Some{v} -> v, None -> 0 }')
        assert isinstance(e, A.MatchExpr)
        assert len(e.arms) == 2

    def test_struct_expr_named_fields(self):
        e = self._expr("Trunk{native: 5}")
        assert isinstance(e, A.StructExpr)
        assert e.fields[0][0] == "native"

    def test_struct_expr_positional(self):
        e = self._expr("Pair(1, 2)")
        assert isinstance(e, A.StructExpr)
        assert e.fields[0][0] is None

    def test_nullary_constructor(self):
        e = self._expr("None")
        assert isinstance(e, A.StructExpr)
        assert e.ctor == "None"

    def test_vec_literal(self):
        e = self._expr("[1, 2, 3]")
        assert isinstance(e, A.VecExpr)
        assert len(e.elems) == 3

    def test_cast(self):
        e = self._expr("x as bit<16>")
        assert isinstance(e, A.Cast)
        assert e.type == T.TBit(16)

    def test_sized_literal(self):
        e = self._expr("12'd7")
        assert isinstance(e, A.Lit)
        assert e.value == 7
        assert e.width == 12

    def test_string_concat(self):
        e = self._expr('"a" ++ x')
        assert e.op == "++"


class TestFunctions:
    def test_function_decl(self):
        prog = parse_program(
            "function add1(x: bigint): bigint { x + 1 }"
        )
        (fn,) = prog.functions
        assert fn.name == "add1"
        assert fn.params == [("x", T.BIGINT)]
        assert fn.return_type == T.BIGINT

    def test_function_with_match(self):
        prog = parse_program(
            """
            typedef mode_t = Access | Trunk{native: bit<12>}
            function tag(m: mode_t): bit<12> {
                match (m) { Access -> 1, Trunk{n} -> n }
            }
            """
        )
        assert prog.functions[0].name == "tag"


class TestWholeProgram:
    def test_paper_label_program(self):
        # The exact program from the paper's introduction (modulo types).
        prog = parse_program(
            """
            input relation GivenLabel(n1: bit<32>, label: string)
            input relation Edge(n1: bit<32>, n2: bit<32>)
            output relation Label(n: bit<32>, label: string)

            Label(n1, label) :- GivenLabel(n1, label).
            Label(n2, label) :- Label(n1, label), Edge(n1, n2).
            """
        )
        assert len(prog.relations) == 3
        assert len(prog.rules) == 2

    def test_error_carries_position(self):
        try:
            parse_program("input relation (x: bool)")
        except ParseError as e:
            assert e.line == 1
        else:  # pragma: no cover
            raise AssertionError("expected ParseError")
