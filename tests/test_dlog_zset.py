"""Unit and property tests for Z-sets and arrangements."""

from hypothesis import given
from hypothesis import strategies as st

from repro.dlog.dataflow.arrangement import Arrangement
from repro.dlog.dataflow.zset import ZSet

records = st.tuples(st.integers(-5, 5), st.integers(-5, 5))
weights = st.integers(-3, 3)
zset_entries = st.lists(st.tuples(records, weights), max_size=30)


def build(entries):
    z = ZSet()
    for record, weight in entries:
        z.add(record, weight)
    return z


class TestZSetBasics:
    def test_zero_weight_is_dropped(self):
        z = ZSet()
        z.add("a", 0)
        assert len(z) == 0

    def test_cancellation_removes_entry(self):
        z = ZSet()
        z.add("a", 2)
        z.add("a", -2)
        assert "a" not in z
        assert len(z) == 0

    def test_weight_accumulates(self):
        z = ZSet()
        z.add("a", 1)
        z.add("a", 3)
        assert z.weight("a") == 4

    def test_merge(self):
        a = build([(1, 2), (2, 1)])
        b = build([(1, -2), (3, 1)])
        a.merge(b)
        assert a.weight(1) == 0
        assert a.weight(2) == 1
        assert a.weight(3) == 1

    def test_positive_part(self):
        z = build([("a", 2), ("b", -1)])
        pos = z.positive_part()
        assert pos.weight("a") == 1
        assert "b" not in pos

    def test_is_set(self):
        assert build([("a", 1)]).is_set()
        assert not build([("a", 2)]).is_set()

    def test_from_rows(self):
        z = ZSet.from_rows(["x", "y", "x"])
        assert z.weight("x") == 2


class TestZSetAlgebra:
    @given(zset_entries)
    def test_negation_cancels(self, entries):
        z = build(entries)
        z.merge(z.negated())
        assert len(z) == 0

    @given(zset_entries, zset_entries)
    def test_merge_commutes(self, e1, e2):
        a1, b1 = build(e1), build(e2)
        a1.merge(b1)
        b2, a2 = build(e2), build(e1)
        b2.merge(a2)
        assert a1 == b2

    @given(zset_entries, zset_entries, zset_entries)
    def test_merge_associates(self, e1, e2, e3):
        left = build(e1)
        bc = build(e2)
        bc.merge(build(e3))
        left.merge(bc)

        right = build(e1)
        right.merge(build(e2))
        right.merge(build(e3))
        assert left == right

    @given(zset_entries)
    def test_scaled_by_zero_is_empty(self, entries):
        assert len(build(entries).scaled(0)) == 0

    @given(zset_entries)
    def test_copy_is_independent(self, entries):
        z = build(entries)
        c = z.copy()
        c.add(("sentinel", 99), 1)
        assert ("sentinel", 99) not in z


class TestArrangement:
    def test_add_and_group(self):
        arr = Arrangement()
        arr.add("k", "r1", 1)
        arr.add("k", "r2", 2)
        assert arr.group("k") == {"r1": 1, "r2": 2}

    def test_zero_entries_cleaned(self):
        arr = Arrangement()
        arr.add("k", "r", 1)
        arr.add("k", "r", -1)
        assert not arr.has_key("k")
        assert len(arr) == 0

    def test_missing_key_is_empty(self):
        arr = Arrangement()
        assert arr.group("nope") == {}

    def test_update_from_zset(self):
        arr = Arrangement()
        delta = ZSet({(1, "a"): 1, (2, "b"): 1, (1, "c"): -1})
        arr.update(delta, key_fn=lambda r: r[0])
        assert arr.group(1) == {(1, "a"): 1, (1, "c"): -1}
        assert arr.total_records() == 3

    @given(zset_entries)
    def test_total_matches_zset(self, entries):
        z = build(entries)
        arr = Arrangement()
        arr.update(z, key_fn=lambda r: r[0])
        assert arr.total_records() == len(z)
