"""Tests for the dlog shell (__main__) and the plan explainer."""

import io
import sys

from repro.dlog import compile_program
from repro.dlog.__main__ import main

PROGRAM = """
input relation Edge(a: bigint, b: bigint)
input relation GivenLabel(n: bigint, l: string)
output relation Label(n: bigint, l: string)
output relation Count(l: string, n: bigint)
Label(n, l) :- GivenLabel(n, l).
Label(b, l) :- Label(a, l), Edge(a, b).
Count(l, n) :- Label(_, l), var n = Aggregate((l), count()).
"""


class TestExplain:
    def test_explain_mentions_strata_and_modes(self):
        text = compile_program(PROGRAM).explain()
        assert "recursive (DRed)" in text
        assert "dataflow" in text
        assert "Label" in text
        assert "aggregate(count)" in text

    def test_explain_shows_rule_shapes(self):
        text = compile_program(
            "input relation A(x: bigint)\n"
            "input relation B(x: bigint)\n"
            "output relation O(x: bigint)\n"
            "O(x) :- A(x), not B(x), x > 1."
        ).explain()
        assert "not B" in text
        assert "guard" in text


def run_cli(tmp_path, commands, program=PROGRAM):
    path = tmp_path / "prog.dl"
    path.write_text(program)
    stdin = sys.stdin
    stdout = sys.stdout
    sys.stdin = io.StringIO("\n".join(commands) + "\n")
    sys.stdout = io.StringIO()
    try:
        code = main([str(path)])
        output = sys.stdout.getvalue()
    finally:
        sys.stdin = stdin
        sys.stdout = stdout
    return code, output


class TestShell:
    def test_insert_prints_deltas(self, tmp_path):
        code, out = run_cli(
            tmp_path,
            ['+ GivenLabel (1, "x")', "+ Edge (1, 2)", "quit"],
        )
        assert code == 0
        assert "+ Label(1, 'x')" in out
        assert "+ Label(2, 'x')" in out

    def test_delete_prints_retraction(self, tmp_path):
        code, out = run_cli(
            tmp_path,
            ['+ GivenLabel (1, "x")', '- GivenLabel (1, "x")', "quit"],
        )
        assert "- Label(1, 'x')" in out

    def test_dump(self, tmp_path):
        code, out = run_cli(
            tmp_path, ['+ GivenLabel (1, "x")', "dump Label", "quit"]
        )
        assert "Label(1, 'x')" in out

    def test_unknown_command_is_friendly(self, tmp_path):
        code, out = run_cli(tmp_path, ["frobnicate", "quit"])
        assert code == 0
        assert "unknown command" in out

    def test_bad_row_reports_error(self, tmp_path):
        code, out = run_cli(tmp_path, ["+ Edge (1, 'not-an-int')", "quit"])
        assert "error:" in out

    def test_explain_and_profile_commands(self, tmp_path):
        code, out = run_cli(tmp_path, ["explain", "profile", "quit"])
        assert "stratum" in out
        assert "transactions" in out

    def test_bad_program_file(self, tmp_path, capsys):
        path = tmp_path / "bad.dl"
        path.write_text("input relation (")
        assert main([str(path)]) == 1

    def test_missing_args_shows_usage(self, capsys):
        assert main([]) == 2
