"""Tests for the fault-tolerant transport layer (``repro.net``):
retry policies, reconnecting connections, fail-fast semantics, and the
fault-injecting proxy."""

import socket
import threading
import time

import pytest

from repro.errors import ConnectionLostError, ProtocolError
from repro.mgmt.client import ManagementClient
from repro.mgmt.database import Database
from repro.mgmt.schema import simple_schema
from repro.mgmt.server import ManagementServer
from repro.net import FaultInjector, RetryPolicy
from repro.net.resilient import BROKEN, CONNECTED, RETRYING

FAST = RetryPolicy(
    connect_timeout=2.0,
    call_timeout=2.0,
    max_reconnect_attempts=60,
    base_delay=0.01,
    max_delay=0.05,
)


def make_db():
    return Database(
        simple_schema("net", {"Port": {"name": "string", "vlan": "integer"}})
    )


def free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def wait_for(predicate, timeout=10.0, what="condition"):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


class TestRetryPolicy:
    def test_delay_count_is_bounded(self):
        policy = RetryPolicy(max_reconnect_attempts=5, jitter=0.0)
        assert len(list(policy.delays())) == 5

    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(
            base_delay=0.1,
            multiplier=2.0,
            max_delay=0.5,
            jitter=0.0,
            max_reconnect_attempts=6,
        )
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.5, 0.5, 0.5]

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(
            base_delay=1.0,
            multiplier=1.0,
            max_delay=1.0,
            jitter=0.25,
            max_reconnect_attempts=200,
        )
        for delay in policy.delays():
            assert 0.75 <= delay <= 1.25

    def test_unbounded_policy_keeps_yielding(self):
        policy = RetryPolicy(max_reconnect_attempts=None, jitter=0.0)
        delays = policy.delays()
        for _ in range(1000):
            next(delays)


class TestFailFast:
    def test_call_after_close_raises_immediately(self):
        db = make_db()
        with ManagementServer(db) as srv:
            client = ManagementClient(*srv.address, policy=FAST)
            client.close()
            started = time.time()
            with pytest.raises(ProtocolError):
                client.echo(["x"])
            assert time.time() - started < 1.0

    def test_close_is_idempotent(self):
        db = make_db()
        with ManagementServer(db) as srv:
            client = ManagementClient(*srv.address, policy=FAST)
            client.close()
            client.close()  # must not raise

    def test_close_fails_pending_calls(self):
        db = make_db()
        port = free_port()
        with ManagementServer(db, port=port) as srv:
            injector = FaultInjector(*srv.address, port=free_port()).start()
            client = ManagementClient(*injector.address, policy=FAST)
            injector.set_blackhole(True)  # requests vanish silently
            errors = []

            def blocked_call():
                try:
                    client.echo(["never answered"])
                except ProtocolError as exc:
                    errors.append(exc)

            t = threading.Thread(target=blocked_call)
            t.start()
            time.sleep(0.1)  # let the call register as pending
            client.close()
            t.join(timeout=2.0)
            assert not t.is_alive()
            assert len(errors) == 1
            injector.stop()

    def test_broken_after_retries_exhausted_fails_fast(self):
        db = make_db()
        with ManagementServer(db) as srv:
            injector = FaultInjector(*srv.address, port=free_port()).start()
            policy = RetryPolicy(
                connect_timeout=0.5,
                call_timeout=2.0,
                max_reconnect_attempts=2,
                base_delay=0.01,
                max_delay=0.02,
            )
            client = ManagementClient(*injector.address, policy=policy)
            assert client.echo(["up"]) == ["up"]
            injector.stop()  # connection dies AND reconnects are refused
            wait_for(
                lambda: client.conn.state == BROKEN,
                what="connection to break",
            )
            started = time.time()
            with pytest.raises(ConnectionLostError):
                client.echo(["x"])
            assert time.time() - started < 1.0
            health = client.health()
            assert health["state"] == BROKEN
            assert health["retry_count"] >= 2
            assert health["last_error"]
            client.close()

    def test_connect_timeout_is_configurable(self):
        db = make_db()
        with ManagementServer(db) as srv:
            client = ManagementClient(*srv.address, connect_timeout=1.5)
            assert client.conn.policy.connect_timeout == 1.5
            client.close()


class TestReconnect:
    @pytest.mark.slow
    def test_client_survives_server_restart(self):
        db = make_db()
        port = free_port()
        srv = ManagementServer(db, port=port).start()
        client = ManagementClient("127.0.0.1", port, policy=FAST)
        assert client.echo([1]) == [1]
        srv.stop()
        srv = ManagementServer(db, port=port).start()
        wait_for(
            lambda: client.conn.state == CONNECTED
            and client.conn.reconnects >= 1,
            what="reconnect",
        )
        assert client.echo([2]) == [2]
        transitions = client.health()["transitions"]
        assert transitions[:1] == [CONNECTED]
        assert RETRYING in transitions
        assert transitions[-1] == CONNECTED
        client.close()
        srv.stop()

    @pytest.mark.slow
    def test_monitors_cleared_and_hook_fires_on_reconnect(self):
        db = make_db()
        port = free_port()
        srv = ManagementServer(db, port=port).start()
        client = ManagementClient("127.0.0.1", port, policy=FAST)
        client.monitor({"Port": None}, lambda u: None)
        assert client._monitor_callbacks
        hook_fired = threading.Event()
        client.on_reconnect(hook_fired.set)
        srv.stop()
        srv = ManagementServer(db, port=port).start()
        assert hook_fired.wait(10.0), "reconnect hook never ran"
        assert not client._monitor_callbacks
        client.close()
        srv.stop()

    @pytest.mark.slow
    def test_heartbeat_detects_blackhole(self):
        db = make_db()
        with ManagementServer(db) as srv:
            injector = FaultInjector(*srv.address, port=free_port()).start()
            policy = RetryPolicy(
                connect_timeout=1.0,
                call_timeout=0.3,
                max_reconnect_attempts=100,
                base_delay=0.01,
                max_delay=0.05,
                heartbeat_interval=0.05,
            )
            client = ManagementClient(*injector.address, policy=policy)
            assert client.echo(["pre"]) == ["pre"]
            injector.set_blackhole(True)
            # No transport error is ever raised by a blackhole — only
            # the heartbeat can notice the peer has gone silent.
            wait_for(
                lambda: RETRYING in client.conn.transitions,
                what="heartbeat to flag the dead connection",
            )
            injector.set_blackhole(False)
            wait_for(
                lambda: client.conn.state == CONNECTED
                and client.conn.reconnects >= 1,
                what="reconnect after blackhole lifted",
            )
            assert client.echo(["post"]) == ["post"]
            client.close()
            injector.stop()


class TestFaultInjector:
    def test_transparent_proxying(self):
        db = make_db()
        with ManagementServer(db) as srv:
            injector = FaultInjector(*srv.address, port=free_port()).start()
            client = ManagementClient(*injector.address, policy=FAST)
            assert client.echo(["through proxy"]) == ["through proxy"]
            assert injector.connections_accepted == 1
            assert injector.bytes_up > 0 and injector.bytes_down > 0
            client.close()
            injector.stop()

    def test_latency_fault_delays_calls(self):
        db = make_db()
        with ManagementServer(db) as srv:
            injector = FaultInjector(*srv.address, port=free_port()).start()
            client = ManagementClient(*injector.address, policy=FAST)
            client.echo(["warm"])
            injector.set_latency(0.15)
            started = time.time()
            client.echo(["slow"])
            assert time.time() - started >= 0.15
            injector.set_latency(0.0)
            client.close()
            injector.stop()

    @pytest.mark.slow
    def test_sever_drops_connection_and_client_recovers(self):
        db = make_db()
        with ManagementServer(db) as srv:
            injector = FaultInjector(*srv.address, port=free_port()).start()
            client = ManagementClient(*injector.address, policy=FAST)
            client.echo(["pre"])
            assert injector.sever() == 1
            wait_for(
                lambda: client.conn.state == CONNECTED
                and client.conn.reconnects >= 1,
                what="reconnect through injector",
            )
            assert client.echo(["post"]) == ["post"]
            client.close()
            injector.stop()

    @pytest.mark.slow
    def test_stalled_peer_bounds_send_and_recovers(self):
        """Regression: a peer that accepts the connection but stops
        *reading* used to wedge ``sendall`` indefinitely once TCP flow
        control filled the socket buffers — the caller froze inside the
        send, where neither the call timeout nor the heartbeat could
        reach it.  The bounded send path must give up after
        ``send_timeout`` and abort the socket into reconnect."""
        db = make_db()
        with ManagementServer(db) as srv:
            injector = FaultInjector(*srv.address, port=free_port()).start()
            policy = RetryPolicy(
                connect_timeout=2.0,
                call_timeout=30.0,  # NOT what bounds the wedge
                send_timeout=0.5,
                max_reconnect_attempts=60,
                base_delay=0.01,
                max_delay=0.05,
            )
            client = ManagementClient(*injector.address, policy=policy)
            assert client.echo(["warm"]) == ["warm"]
            injector.set_stall(True)
            # Big enough to overrun the kernel socket buffers on
            # loopback, so the send genuinely blocks on flow control.
            payload = "x" * (32 * 1024 * 1024)
            started = time.time()
            with pytest.raises(ConnectionLostError) as excinfo:
                client.conn.call("echo", [payload], retryable=False)
            elapsed = time.time() - started
            assert elapsed < 10.0  # bounded by send_timeout, not wedged
            # The raised error carries the send-stall cause; last_error
            # may already reflect the aborted reader racing past it.
            assert "stalled" in str(excinfo.value)
            injector.set_stall(False)
            wait_for(
                lambda: client.conn.state == CONNECTED
                and client.conn.reconnects >= 1,
                what="reconnect after stalled send",
            )
            assert client.echo(["post"]) == ["post"]
            client.close()
            injector.stop()

    @pytest.mark.slow
    def test_garbled_length_prefix_triggers_reconnect(self):
        db = make_db()
        with ManagementServer(db) as srv:
            injector = FaultInjector(*srv.address, port=free_port()).start()
            client = ManagementClient(*injector.address, policy=FAST)
            client.echo(["pre"])
            injector.garble_next("down")
            # The garbled response is lost; the retryable echo re-sends
            # on the fresh connection after the framing error.
            assert client.echo(["garbled"]) == ["garbled"]
            wait_for(
                lambda: client.conn.reconnects >= 1,
                what="reconnect after framing error",
            )
            assert "frame" in (client.conn.last_error or "") or client.conn.reconnects >= 1
            client.close()
            injector.stop()

    @pytest.mark.slow
    def test_close_mid_message_triggers_reconnect(self):
        db = make_db()
        with ManagementServer(db) as srv:
            injector = FaultInjector(*srv.address, port=free_port()).start()
            injector.close_after(20)  # cut inside the first request frame
            client = ManagementClient(*injector.address, policy=FAST)
            injector.close_after(10**9)  # reconnected pipes live on
            assert client.echo(["recovered"]) == ["recovered"]
            client.close()
            injector.stop()


class TestTornJournal:
    def test_restore_recovers_complete_records_from_torn_journal(self, tmp_path):
        import os

        from repro.mgmt.persist import Persister, restore

        db = make_db()
        persister = Persister(db, str(tmp_path))
        db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "a", "vlan": 1}}]
        )
        db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "b", "vlan": 2}}]
        )
        persister.close()

        # Simulate a crash mid-append: a torn, non-JSON final line.
        journal = os.path.join(str(tmp_path), "journal.ndjson")
        with open(journal, "a", encoding="utf-8") as f:
            f.write('{"Port": {"u3": {"new": {"name": "c", "vl')

        db2 = restore(str(tmp_path), schema=db.schema)
        names = sorted(row["name"] for row in db2.rows("Port"))
        assert names == ["a", "b"]

    def test_restore_ignores_truncation_after_snapshot(self, tmp_path):
        import os

        from repro.mgmt.persist import Persister, restore

        db = make_db()
        persister = Persister(db, str(tmp_path))
        db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "a", "vlan": 1}}]
        )
        persister.compact()
        db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "b", "vlan": 2}}]
        )
        persister.close()
        journal = os.path.join(str(tmp_path), "journal.ndjson")
        with open(journal, "a", encoding="utf-8") as f:
            f.write("{torn")

        db2 = restore(str(tmp_path))
        names = sorted(row["name"] for row in db2.rows("Port"))
        assert names == ["a", "b"]

    def test_restart_after_torn_tail_preserves_new_commits(self, tmp_path):
        """Regression: a Persister attaching to a journal with a torn
        final line must repair (truncate) it before appending.  Without
        the repair, records written after the torn line are silently
        dropped by restore, which stops replaying at the first
        undecodable line — post-restart commits would be lost."""
        import os

        from repro.mgmt.persist import Persister, restore

        db = make_db()
        persister = Persister(db, str(tmp_path))
        db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "a", "vlan": 1}}]
        )
        persister.close()
        journal = os.path.join(str(tmp_path), "journal.ndjson")
        with open(journal, "a", encoding="utf-8") as f:
            f.write('{"Port": {"u9": {"new": {"name": "x", "vl')  # crash

        # Restart: recover what the journal holds, attach, commit more.
        db2 = restore(str(tmp_path), schema=db.schema)
        persister2 = Persister(db2, str(tmp_path))
        assert persister2.repaired_bytes > 0
        db2.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "b", "vlan": 2}}]
        )
        persister2.close()

        db3 = restore(str(tmp_path), schema=db.schema)
        names = sorted(row["name"] for row in db3.rows("Port"))
        assert names == ["a", "b"]

    def test_repair_is_noop_on_clean_journal(self, tmp_path):
        from repro.mgmt.persist import Persister, restore

        db = make_db()
        persister = Persister(db, str(tmp_path))
        db.transact(
            [{"op": "insert", "table": "Port", "row": {"name": "a", "vlan": 1}}]
        )
        persister.close()

        persister2 = Persister(db, str(tmp_path))
        assert persister2.repaired_bytes == 0
        persister2.close()
        db2 = restore(str(tmp_path), schema=db.schema)
        assert [row["name"] for row in db2.rows("Port")] == ["a"]

    def test_repair_tolerates_blank_lines_and_missing_journal(self, tmp_path):
        import os

        from repro.mgmt.persist import _repair_journal

        missing = os.path.join(str(tmp_path), "journal.ndjson")
        assert _repair_journal(missing) == 0

        with open(missing, "w", encoding="utf-8") as f:
            f.write('{"Port": {}}\n\n{"Port": {}}\n{"torn')
        dropped = _repair_journal(missing)
        assert dropped == len('{"torn')
        with open(missing, encoding="utf-8") as f:
            assert f.read() == '{"Port": {}}\n\n{"Port": {}}\n'
