"""Integration tests for the incremental Datalog engine."""

import pytest

from repro.dlog import compile_program
from repro.dlog.values import MapValue, StructValue
from repro.errors import StratificationError, TransactionError


def rows(runtime, relation):
    return runtime.dump(relation)


class TestBasicRules:
    PROG = """
    input relation In(x: bigint)
    output relation Out(x: bigint)
    Out(x) :- In(x).
    """

    def test_copy_rule(self):
        rt = compile_program(self.PROG).start()
        result = rt.transaction(inserts={"In": [(1,), (2,)]})
        assert result.inserted("Out") == sorted([(1,), (2,)])
        assert rows(rt, "Out") == {(1,), (2,)}

    def test_delete_propagates(self):
        rt = compile_program(self.PROG).start()
        rt.transaction(inserts={"In": [(1,), (2,)]})
        result = rt.transaction(deletes={"In": [(1,)]})
        assert result.deleted("Out") == [(1,)]
        assert rows(rt, "Out") == {(2,)}

    def test_duplicate_insert_warns_and_ignores(self):
        rt = compile_program(self.PROG).start()
        rt.transaction(inserts={"In": [(1,)]})
        result = rt.transaction(inserts={"In": [(1,)]})
        assert result.warnings
        assert result.deltas == {}

    def test_delete_of_absent_row_warns(self):
        rt = compile_program(self.PROG).start()
        result = rt.transaction(deletes={"In": [(9,)]})
        assert result.warnings
        assert rows(rt, "Out") == set()

    def test_empty_transaction_is_noop(self):
        rt = compile_program(self.PROG).start()
        result = rt.transaction()
        assert result.deltas == {}

    def test_unknown_relation_rejected(self):
        rt = compile_program(self.PROG).start()
        with pytest.raises(TransactionError):
            rt.transaction(inserts={"Nope": [(1,)]})

    def test_write_to_derived_relation_rejected(self):
        rt = compile_program(self.PROG).start()
        with pytest.raises(TransactionError):
            rt.transaction(inserts={"Out": [(1,)]})

    def test_bad_row_type_rejected(self):
        rt = compile_program(self.PROG).start()
        with pytest.raises(TransactionError):
            rt.transaction(inserts={"In": [("nope",)]})

    def test_bad_arity_rejected(self):
        rt = compile_program(self.PROG).start()
        with pytest.raises(TransactionError):
            rt.transaction(inserts={"In": [(1, 2)]})


class TestJoins:
    PROG = """
    input relation Person(name: string, city: string)
    input relation City(city: string, country: string)
    output relation Out(name: string, country: string)
    Out(n, c) :- Person(n, city), City(city, c).
    """

    def test_join(self):
        rt = compile_program(self.PROG).start()
        rt.transaction(inserts={"Person": [("ada", "london")]})
        result = rt.transaction(inserts={"City": [("london", "uk")]})
        assert result.inserted("Out") == [("ada", "uk")]

    def test_join_same_transaction(self):
        rt = compile_program(self.PROG).start()
        result = rt.transaction(
            inserts={
                "Person": [("ada", "london")],
                "City": [("london", "uk")],
            }
        )
        assert result.inserted("Out") == [("ada", "uk")]

    def test_join_delete_one_side(self):
        rt = compile_program(self.PROG).start()
        rt.transaction(
            inserts={
                "Person": [("ada", "london"), ("bob", "london")],
                "City": [("london", "uk")],
            }
        )
        result = rt.transaction(deletes={"City": [("london", "uk")]})
        assert set(result.deleted("Out")) == {("ada", "uk"), ("bob", "uk")}

    def test_multiway_join(self):
        prog = """
        input relation A(x: bigint, y: bigint)
        input relation B(y: bigint, z: bigint)
        input relation C(z: bigint, w: bigint)
        output relation Out(x: bigint, w: bigint)
        Out(x, w) :- A(x, y), B(y, z), C(z, w).
        """
        rt = compile_program(prog).start()
        result = rt.transaction(
            inserts={"A": [(1, 2)], "B": [(2, 3)], "C": [(3, 4)]}
        )
        assert result.inserted("Out") == [(1, 4)]

    def test_self_join(self):
        prog = """
        input relation E(a: bigint, b: bigint)
        output relation TwoHop(a: bigint, c: bigint)
        TwoHop(a, c) :- E(a, b), E(b, c).
        """
        rt = compile_program(prog).start()
        result = rt.transaction(inserts={"E": [(1, 2), (2, 3)]})
        assert set(result.inserted("TwoHop")) == {(1, 3)}

    def test_join_on_literal(self):
        prog = """
        input relation Port(id: bigint, mode: string)
        output relation AccessPort(id: bigint)
        AccessPort(p) :- Port(p, "access").
        """
        rt = compile_program(prog).start()
        result = rt.transaction(
            inserts={"Port": [(1, "access"), (2, "trunk")]}
        )
        assert result.inserted("AccessPort") == [(1,)]

    def test_duplicate_derivations_are_set_semantics(self):
        prog = """
        input relation A(x: bigint, tag: string)
        output relation Out(x: bigint)
        Out(x) :- A(x, _).
        """
        rt = compile_program(prog).start()
        rt.transaction(inserts={"A": [(1, "a"), (1, "b")]})
        result = rt.transaction(deletes={"A": [(1, "a")]})
        # Still supported by (1, "b"): no output change.
        assert result.deltas.get("Out") is None
        result = rt.transaction(deletes={"A": [(1, "b")]})
        assert result.deleted("Out") == [(1,)]


class TestNegation:
    PROG = """
    input relation All(x: bigint)
    input relation Blocked(x: bigint)
    output relation Allowed(x: bigint)
    Allowed(x) :- All(x), not Blocked(x).
    """

    def test_negation_passes_absent(self):
        rt = compile_program(self.PROG).start()
        result = rt.transaction(inserts={"All": [(1,)]})
        assert result.inserted("Allowed") == [(1,)]

    def test_negation_blocks_present(self):
        rt = compile_program(self.PROG).start()
        result = rt.transaction(
            inserts={"All": [(1,)], "Blocked": [(1,)]}
        )
        assert result.deltas.get("Allowed") is None

    def test_block_later_retracts(self):
        rt = compile_program(self.PROG).start()
        rt.transaction(inserts={"All": [(1,)]})
        result = rt.transaction(inserts={"Blocked": [(1,)]})
        assert result.deleted("Allowed") == [(1,)]

    def test_unblock_restores(self):
        rt = compile_program(self.PROG).start()
        rt.transaction(inserts={"All": [(1,)], "Blocked": [(1,)]})
        result = rt.transaction(deletes={"Blocked": [(1,)]})
        assert result.inserted("Allowed") == [(1,)]

    def test_negation_with_wildcard(self):
        prog = """
        input relation Host(h: bigint)
        input relation Assigned(h: bigint, vm: string)
        output relation FreeHost(h: bigint)
        FreeHost(h) :- Host(h), not Assigned(h, _).
        """
        rt = compile_program(prog).start()
        rt.transaction(
            inserts={"Host": [(1,), (2,)], "Assigned": [(1, "vm0")]}
        )
        assert rows(rt, "FreeHost") == {(2,)}


class TestExpressionsInRules:
    def test_guard_and_arithmetic(self):
        prog = """
        input relation N(x: bigint)
        output relation Big(x: bigint, double: bigint)
        Big(x, y) :- N(x), x > 10, var y = x * 2.
        """
        rt = compile_program(prog).start()
        result = rt.transaction(inserts={"N": [(5,), (20,)]})
        assert result.inserted("Big") == [(20, 40)]

    def test_function_call(self):
        prog = """
        function classify(x: bigint): string {
            if (x > 0) "pos" else "neg"
        }
        input relation N(x: bigint)
        output relation C(x: bigint, cls: string)
        C(x, classify(x)) :- N(x).
        """
        rt = compile_program(prog).start()
        result = rt.transaction(inserts={"N": [(3,), (-4,)]})
        assert set(result.inserted("C")) == {(3, "pos"), (-4, "neg")}

    def test_string_operations(self):
        prog = """
        input relation S(s: string)
        output relation U(s: string)
        U(to_uppercase(s)) :- S(s).
        """
        rt = compile_program(prog).start()
        result = rt.transaction(inserts={"S": [("abc",)]})
        assert result.inserted("U") == [("ABC",)]

    def test_flatmap_expands_vector(self):
        prog = """
        input relation Batch(id: bigint, items: Vec<string>)
        output relation Item(id: bigint, item: string)
        Item(id, item) :- Batch(id, v), var item = FlatMap(v).
        """
        rt = compile_program(prog).start()
        result = rt.transaction(inserts={"Batch": [(1, ("a", "b"))]})
        assert set(result.inserted("Item")) == {(1, "a"), (1, "b")}
        result = rt.transaction(deletes={"Batch": [(1, ("a", "b"))]})
        assert set(result.deleted("Item")) == {(1, "a"), (1, "b")}

    def test_bit_width_wrapping(self):
        prog = """
        input relation B(x: bit<8>)
        output relation W(x: bit<8>)
        W(y) :- B(x), var y = x + 200.
        """
        rt = compile_program(prog).start()
        result = rt.transaction(inserts={"B": [(100,)]})
        assert result.inserted("W") == [((100 + 200) % 256,)]

    def test_union_type_match(self):
        prog = """
        typedef mode_t = Access | Trunk{native: bit<12>}
        input relation Port(id: bigint, mode: mode_t)
        output relation Vlan(id: bigint, vlan: bit<12>)
        Vlan(p, v) :- Port(p, m),
            var v = match (m) { Access -> 1, Trunk{n} -> n }.
        """
        rt = compile_program(prog).start()
        result = rt.transaction(
            inserts={
                "Port": [
                    (1, StructValue("Access", ())),
                    (2, StructValue("Trunk", (42,))),
                ]
            }
        )
        assert set(result.inserted("Vlan")) == {(1, 1), (2, 42)}

    def test_constructor_pattern_in_body(self):
        prog = """
        typedef mode_t = Access | Trunk{native: bit<12>}
        input relation Port(id: bigint, mode: mode_t)
        output relation Native(id: bigint, vlan: bit<12>)
        Native(p, v) :- Port(p, Trunk{v}).
        """
        rt = compile_program(prog).start()
        result = rt.transaction(
            inserts={
                "Port": [
                    (1, StructValue("Access", ())),
                    (2, StructValue("Trunk", (7,))),
                ]
            }
        )
        assert result.inserted("Native") == [(2, 7)]


class TestAggregation:
    PROG = """
    input relation Port(id: bigint, switch: string)
    output relation PortCount(switch: string, n: bigint)
    PortCount(sw, n) :- Port(p, sw), var n = Aggregate((sw), count()).
    """

    def test_count(self):
        rt = compile_program(self.PROG).start()
        result = rt.transaction(
            inserts={"Port": [(1, "s1"), (2, "s1"), (3, "s2")]}
        )
        assert set(result.inserted("PortCount")) == {("s1", 2), ("s2", 1)}

    def test_count_updates_incrementally(self):
        rt = compile_program(self.PROG).start()
        rt.transaction(inserts={"Port": [(1, "s1"), (2, "s1")]})
        result = rt.transaction(inserts={"Port": [(3, "s1")]})
        assert result.deleted("PortCount") == [("s1", 2)]
        assert result.inserted("PortCount") == [("s1", 3)]

    def test_group_vanishes(self):
        rt = compile_program(self.PROG).start()
        rt.transaction(inserts={"Port": [(1, "s1")]})
        result = rt.transaction(deletes={"Port": [(1, "s1")]})
        assert result.deleted("PortCount") == [("s1", 1)]
        assert rows(rt, "PortCount") == set()

    def test_sum(self):
        prog = """
        input relation Load(server: string, mb: bigint)
        output relation Total(server: string, total: bigint)
        Total(s, t) :- Load(s, mb), var t = Aggregate((s), sum(mb)).
        """
        rt = compile_program(prog).start()
        result = rt.transaction(
            inserts={"Load": [("a", 10), ("a", 32), ("b", 5)]}
        )
        assert set(result.inserted("Total")) == {("a", 42), ("b", 5)}

    def test_group_to_vec(self):
        prog = """
        input relation Member(group: string, who: string)
        output relation Roster(group: string, members: Vec<string>)
        Roster(g, m) :- Member(g, w), var m = Aggregate((g), group_to_vec(w)).
        """
        rt = compile_program(prog).start()
        result = rt.transaction(
            inserts={"Member": [("g", "bob"), ("g", "ada")]}
        )
        assert result.inserted("Roster") == [("g", ("ada", "bob"))]


class TestRecursion:
    LABEL = """
    input relation GivenLabel(n: bigint, label: string)
    input relation Edge(a: bigint, b: bigint)
    output relation Label(n: bigint, label: string)
    Label(n, l) :- GivenLabel(n, l).
    Label(b, l) :- Label(a, l), Edge(a, b).
    """

    def test_paper_label_program(self):
        rt = compile_program(self.LABEL).start()
        result = rt.transaction(
            inserts={
                "GivenLabel": [(1, "x")],
                "Edge": [(1, 2), (2, 3)],
            }
        )
        assert set(result.inserted("Label")) == {(1, "x"), (2, "x"), (3, "x")}

    def test_incremental_edge_insert(self):
        rt = compile_program(self.LABEL).start()
        rt.transaction(
            inserts={"GivenLabel": [(1, "x")], "Edge": [(1, 2)]}
        )
        result = rt.transaction(inserts={"Edge": [(2, 3)]})
        assert result.inserted("Label") == [(3, "x")]

    def test_incremental_edge_delete(self):
        rt = compile_program(self.LABEL).start()
        rt.transaction(
            inserts={"GivenLabel": [(1, "x")], "Edge": [(1, 2), (2, 3)]}
        )
        result = rt.transaction(deletes={"Edge": [(1, 2)]})
        assert set(result.deleted("Label")) == {(2, "x"), (3, "x")}

    def test_delete_with_alternative_path_keeps_label(self):
        rt = compile_program(self.LABEL).start()
        rt.transaction(
            inserts={
                "GivenLabel": [(1, "x")],
                "Edge": [(1, 2), (2, 3), (1, 3)],
            }
        )
        result = rt.transaction(deletes={"Edge": [(2, 3)]})
        # Node 3 still reachable via the direct edge: no change.
        assert result.deltas.get("Label") is None

    def test_cycle_deletion(self):
        rt = compile_program(self.LABEL).start()
        rt.transaction(
            inserts={
                "GivenLabel": [(1, "x")],
                "Edge": [(1, 2), (2, 3), (3, 2)],
            }
        )
        # 2 and 3 support each other through the cycle; cutting the
        # entry edge must delete both (the classic DRed trap).
        result = rt.transaction(deletes={"Edge": [(1, 2)]})
        assert set(result.deleted("Label")) == {(2, "x"), (3, "x")}
        assert rows(rt, "Label") == {(1, "x")}

    def test_given_label_delete(self):
        rt = compile_program(self.LABEL).start()
        rt.transaction(
            inserts={"GivenLabel": [(1, "x")], "Edge": [(1, 2)]}
        )
        result = rt.transaction(deletes={"GivenLabel": [(1, "x")]})
        assert set(result.deleted("Label")) == {(1, "x"), (2, "x")}

    def test_two_labels_propagate_independently(self):
        rt = compile_program(self.LABEL).start()
        rt.transaction(
            inserts={
                "GivenLabel": [(1, "x"), (9, "y")],
                "Edge": [(1, 2), (9, 2)],
            }
        )
        assert rows(rt, "Label") == {
            (1, "x"),
            (2, "x"),
            (9, "y"),
            (2, "y"),
        }

    def test_recompute_mode_agrees(self):
        inc = compile_program(self.LABEL).start()
        full = compile_program(self.LABEL, recursive_mode="recompute").start()
        script = [
            ({"GivenLabel": [(1, "x")], "Edge": [(1, 2), (2, 3), (3, 1)]}, {}),
            ({}, {"Edge": [(2, 3)]}),
            ({"Edge": [(3, 4)]}, {}),
            ({}, {"GivenLabel": [(1, "x")]}),
        ]
        for inserts, deletes in script:
            inc.transaction(inserts=inserts, deletes=deletes)
            full.transaction(inserts=inserts, deletes=deletes)
            assert rows(inc, "Label") == rows(full, "Label")

    def test_mutual_recursion(self):
        prog = """
        input relation Base(x: bigint)
        input relation Step(x: bigint, y: bigint)
        output relation Even(x: bigint)
        output relation Odd(x: bigint)
        Even(x) :- Base(x).
        Odd(y) :- Even(x), Step(x, y).
        Even(y) :- Odd(x), Step(x, y).
        """
        rt = compile_program(prog).start()
        rt.transaction(
            inserts={"Base": [(0,)], "Step": [(0, 1), (1, 2), (2, 3)]}
        )
        assert rows(rt, "Even") == {(0,), (2,)}
        assert rows(rt, "Odd") == {(1,), (3,)}
        rt.transaction(deletes={"Step": [(1, 2)]})
        assert rows(rt, "Even") == {(0,)}
        assert rows(rt, "Odd") == {(1,)}

    def test_negation_of_lower_stratum_in_recursion(self):
        prog = """
        input relation Edge(a: bigint, b: bigint)
        input relation Down(a: bigint, b: bigint)
        output relation Reach(a: bigint, b: bigint)
        Reach(a, b) :- Edge(a, b), not Down(a, b).
        Reach(a, c) :- Reach(a, b), Edge(b, c), not Down(b, c).
        """
        rt = compile_program(prog).start()
        rt.transaction(inserts={"Edge": [(1, 2), (2, 3)]})
        assert rows(rt, "Reach") == {(1, 2), (2, 3), (1, 3)}
        result = rt.transaction(inserts={"Down": [(2, 3)]})
        assert set(result.deleted("Reach")) == {(2, 3), (1, 3)}
        result = rt.transaction(deletes={"Down": [(2, 3)]})
        assert set(result.inserted("Reach")) == {(2, 3), (1, 3)}

    def test_unstratified_negation_rejected(self):
        prog = """
        input relation E(x: bigint)
        output relation A(x: bigint)
        output relation B(x: bigint)
        A(x) :- E(x), not B(x).
        B(x) :- E(x), A(x), not A(x).
        """
        with pytest.raises(StratificationError):
            compile_program(prog)

    def test_aggregate_through_recursion_rejected(self):
        prog = """
        input relation E(a: bigint, b: bigint)
        output relation R(a: bigint, n: bigint)
        R(a, n) :- E(a, b), R(b, m), var n = Aggregate((a), count()).
        """
        with pytest.raises(StratificationError):
            compile_program(prog)


class TestFacts:
    def test_fact_rule(self):
        prog = """
        output relation Config(key: string, value: bigint)
        Config("mtu", 1500).
        Config("ttl", 64).
        """
        rt = compile_program(prog).start()
        assert rows(rt, "Config") == {("mtu", 1500), ("ttl", 64)}
        assert set(rt.initial_result.inserted("Config")) == {
            ("mtu", 1500),
            ("ttl", 64),
        }

    def test_fact_feeding_rule(self):
        prog = """
        input relation In(x: bigint)
        relation Defaults(x: bigint)
        output relation Out(x: bigint)
        Defaults(99).
        Out(x) :- Defaults(x).
        Out(x) :- In(x).
        """
        rt = compile_program(prog).start()
        assert rows(rt, "Out") == {(99,)}
        rt.transaction(inserts={"In": [(1,)]})
        assert rows(rt, "Out") == {(99,), (1,)}


class TestMultiRuleRelations:
    def test_union_of_rules(self):
        prog = """
        input relation A(x: bigint)
        input relation B(x: bigint)
        output relation U(x: bigint)
        U(x) :- A(x).
        U(x) :- B(x).
        """
        rt = compile_program(prog).start()
        rt.transaction(inserts={"A": [(1,)], "B": [(1,), (2,)]})
        assert rows(rt, "U") == {(1,), (2,)}
        # (1,) has two derivations; deleting one keeps it.
        result = rt.transaction(deletes={"A": [(1,)]})
        assert result.deltas.get("U") is None

    def test_internal_relation_chain(self):
        prog = """
        input relation In(x: bigint)
        relation Mid(x: bigint)
        output relation Out(x: bigint)
        Mid(x) :- In(x), x > 0.
        Out(x) :- Mid(x), x < 10.
        """
        rt = compile_program(prog).start()
        result = rt.transaction(inserts={"In": [(-5,), (5,), (50,)]})
        assert result.inserted("Out") == [(5,)]


class TestMapsInRelations:
    def test_map_valued_column(self):
        prog = """
        input relation Conf(name: string, opts: Map<string, string>)
        output relation HasColor(name: string, color: string)
        HasColor(n, c) :- Conf(n, opts), var o = map_get(opts, "color"),
            var c = unwrap_or(o, "none"), c != "none".
        """
        rt = compile_program(prog).start()
        result = rt.transaction(
            inserts={
                "Conf": [
                    ("a", MapValue([("color", "red")])),
                    ("b", MapValue([("size", "xl")])),
                ]
            }
        )
        assert result.inserted("HasColor") == [("a", "red")]


class TestProfileAndDump:
    def test_profile_counts_transactions(self):
        prog = "input relation In(x: bigint)\noutput relation Out(x: bigint)\nOut(x) :- In(x)."
        rt = compile_program(prog).start()
        rt.transaction(inserts={"In": [(1,)]})
        rt.transaction(inserts={"In": [(2,)]})
        profile = rt.profile()
        # start() runs the initial (fact) transaction as well.
        assert profile["transactions"] == 3
        assert profile["state_records"] > 0

    def test_dump_unknown_relation(self):
        prog = "input relation In(x: bigint)\noutput relation Out(x: bigint)\nOut(x) :- In(x)."
        rt = compile_program(prog).start()
        with pytest.raises(KeyError):
            rt.dump("Nope")
