"""Tests for cross-plane codegen, the type bridge, and nerpa_build."""

import pytest

from repro.core.codegen import generate_declarations
from repro.core.pipeline import nerpa_build
from repro.core.typebridge import (
    camel,
    dlog_value_to_match,
    ovsdb_column_to_dlog_text,
    ovsdb_value_to_dlog,
)
from repro.dlog.values import MapValue, StructValue
from repro.errors import TypeCheckError
from repro.mgmt.schema import ColumnType, simple_schema
from repro.p4.ir import compile_p4
from repro.p4.p4info import MatchField

SIMPLE_P4 = """
header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
struct headers_t { eth_t eth; }
struct meta_t { bit<12> vlan; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
         inout standard_metadata_t std) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control Ing(inout headers_t hdr, inout meta_t m,
            inout standard_metadata_t std) {
    action set_vlan(bit<12> vid) { m.vlan = vid; }
    action drop() { mark_to_drop(); }
    table in_vlan {
        key = { std.ingress_port : exact; }
        actions = { set_vlan; drop; }
        default_action = drop();
    }
    apply { in_vlan.apply(); }
}
"""


class TestTypeBridge:
    def test_camel(self):
        assert camel("in_vlan") == "InVlan"
        assert camel("NoAction") == "NoAction"
        assert camel("mac_learn") == "MacLearn"

    @pytest.mark.parametrize(
        "spec,expected",
        [
            (ColumnType("integer"), "bigint"),
            (ColumnType("string"), "string"),
            (ColumnType("boolean"), "bool"),
            (ColumnType("real"), "float"),
            (ColumnType("uuid"), "string"),
            (ColumnType("integer", min=0, max=1), "Option<bigint>"),
            (ColumnType("string", min=0, max="unlimited"), "Vec<string>"),
            (
                ColumnType("string", "integer", min=0, max="unlimited"),
                "Map<string, bigint>",
            ),
        ],
    )
    def test_column_type_text(self, spec, expected):
        assert ovsdb_column_to_dlog_text(spec) == expected

    def test_optional_value_conversion(self):
        opt = ColumnType("integer", min=0, max=1)
        assert ovsdb_value_to_dlog(opt, None) == StructValue("None", ())
        assert ovsdb_value_to_dlog(opt, 5) == StructValue("Some", (5,))

    def test_set_value_sorted(self):
        st = ColumnType("integer", min=0, max="unlimited")
        assert ovsdb_value_to_dlog(st, frozenset([3, 1, 2])) == (1, 2, 3)

    def test_map_value_conversion(self):
        mt = ColumnType("string", "string", min=0, max="unlimited")
        value = ovsdb_value_to_dlog(mt, {"a": "b"})
        assert isinstance(value, MapValue)
        assert value["a"] == "b"

    def test_exact_match_conversion(self):
        field = MatchField("f", 12, "exact")
        assert dlog_value_to_match(field, 7).key() == ("exact", 7, None)

    def test_lpm_match_conversion(self):
        field = MatchField("f", 32, "lpm")
        m = dlog_value_to_match(field, (0x0A000000, 8))
        assert m.key() == ("lpm", 0x0A000000, 8)

    def test_ternary_match_conversion(self):
        field = MatchField("f", 12, "ternary")
        m = dlog_value_to_match(field, (5, 4095))
        assert m.key() == ("ternary", 5, 4095)

    def test_exact_match_wrong_type(self):
        field = MatchField("f", 12, "exact")
        with pytest.raises(TypeCheckError):
            dlog_value_to_match(field, (1, 2))


class TestCodegen:
    def test_ovsdb_relation_includes_uuid(self):
        schema = simple_schema("db", {"Port": {"name": "string"}})
        text, bindings = generate_declarations(schema, None)
        assert "input relation Port(uuid: string, name: string)" in text
        assert bindings.relation_for_ovsdb["Port"] == "Port"

    def test_table_relation_and_union(self):
        pipeline = compile_p4(SIMPLE_P4)
        text, bindings = generate_declarations(None, pipeline.p4info)
        assert (
            "typedef in_vlan_action_t = InVlanActionSetVlan{vid: bit<12>} "
            "| InVlanActionDrop" in text
        )
        assert (
            "output relation InVlan(ingress_port: bit<16>, "
            "action: in_vlan_action_t)" in text
        )
        binding = bindings.table_relations["InVlan"]
        assert binding.actions_by_constructor["InVlanActionSetVlan"] == (
            "set_vlan",
            1,
        )
        assert not binding.has_priority

    def test_generated_text_parses(self):
        from repro.dlog.parser import parse_program

        schema = simple_schema(
            "db",
            {
                "T": {
                    "a": "string",
                    "b": "?integer",
                    "c": "*string",
                    "d": "map<string,string>",
                }
            },
        )
        pipeline = compile_p4(SIMPLE_P4)
        text, _ = generate_declarations(schema, pipeline.p4info)
        prog = parse_program(text)
        assert {r.name for r in prog.relations} == {"T", "InVlan"}


class TestNerpaBuild:
    SCHEMA = simple_schema(
        "net", {"PortCfg": {"port": "integer", "vlan": "integer"}}
    )

    def test_build_succeeds(self):
        project = nerpa_build(
            self.SCHEMA,
            """
            InVlan(p as bit<16>, InVlanActionSetVlan{v as bit<12>}) :-
                PortCfg(_, p, v).
            """,
            SIMPLE_P4,
        )
        assert "InVlan" in project.bindings.table_relations
        assert project.program.output_relations == ["InVlan"]

    def test_cross_plane_type_error_caught(self):
        # Rule head writes a string where the P4 table wants bit<16>:
        # the cross-plane typecheck must reject it.
        with pytest.raises(TypeCheckError):
            nerpa_build(
                self.SCHEMA,
                """
                InVlan(name, InVlanActionDrop) :- PortCfg(_, p, v),
                    var name = "oops".
                """,
                SIMPLE_P4,
            )

    def test_unknown_action_constructor_caught(self):
        with pytest.raises(TypeCheckError):
            nerpa_build(
                self.SCHEMA,
                "InVlan(p as bit<16>, InVlanActionNonesuch) :- PortCfg(_, p, _).",
                SIMPLE_P4,
            )

    def test_uncovered_output_relation_rejected(self):
        with pytest.raises(TypeCheckError, match="does not correspond"):
            nerpa_build(
                self.SCHEMA,
                """
                output relation Dangling(x: bigint)
                Dangling(p) :- PortCfg(_, p, _).
                """,
                SIMPLE_P4,
            )

    def test_schema_as_json_dict(self):
        project = nerpa_build(
            self.SCHEMA.to_json(),
            "InVlan(p as bit<16>, InVlanActionDrop) :- PortCfg(_, p, _).",
            SIMPLE_P4,
        )
        assert project.schema.name == "net"
