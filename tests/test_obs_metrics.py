"""Tests for the observability metrics registry (``repro.obs``):
basic metric semantics, exporters, and correctness under concurrency —
a multi-thread counter hammer and a reconnect storm driven through the
fault-injecting proxy."""

import socket
import threading
import time

import pytest

from repro import obs
from repro.mgmt.client import ManagementClient
from repro.mgmt.database import Database
from repro.mgmt.schema import simple_schema
from repro.mgmt.server import ManagementServer
from repro.net import FaultInjector, RetryPolicy

pytestmark = pytest.mark.serial  # resets the global obs registry

FAST = RetryPolicy(
    connect_timeout=2.0,
    call_timeout=2.0,
    max_reconnect_attempts=60,
    base_delay=0.01,
    max_delay=0.05,
)


def free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def wait_for(predicate, timeout=10.0, what="condition"):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


@pytest.fixture
def obs_on():
    obs.reset()
    obs.enable()
    yield
    obs.disable()
    obs.reset()


class TestRegistryBasics:
    def test_counter_increments(self):
        reg = obs.MetricsRegistry()
        c = reg.counter("syncs_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        reg = obs.MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)
        assert reg.counter("c").value == 0

    def test_labels_distinguish_series(self):
        reg = obs.MetricsRegistry()
        reg.counter("writes", device="d0").inc()
        reg.counter("writes", device="d1").inc(2)
        assert reg.counter("writes", device="d0").value == 1
        assert reg.counter("writes", device="d1").value == 2

    def test_get_or_create_returns_same_metric(self):
        reg = obs.MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x", a="1") is not reg.counter("x", a="2")

    def test_type_conflict_raises(self):
        reg = obs.MetricsRegistry()
        reg.counter("mixed")
        with pytest.raises(TypeError):
            reg.gauge("mixed")

    def test_gauge_moves_both_ways(self):
        reg = obs.MetricsRegistry()
        g = reg.gauge("inflight")
        g.inc()
        g.inc()
        g.dec()
        assert g.value == 1
        g.set(7.5)
        assert g.value == 7.5

    def test_histogram_summary(self):
        reg = obs.MetricsRegistry()
        h = reg.histogram("latency")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(10.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert 1.0 <= summary["p50"] <= 4.0
        assert summary["p50"] <= summary["p90"] <= summary["p99"]

    def test_histogram_window_bounds_memory(self):
        reg = obs.MetricsRegistry()
        h = reg.histogram("lat", window=16)
        for i in range(1000):
            h.observe(float(i))
        summary = h.summary()
        assert summary["count"] == 1000  # exact totals survive
        assert summary["p50"] >= 984.0  # percentiles cover the window

    def test_snapshot_and_json(self):
        reg = obs.MetricsRegistry()
        reg.counter("a", plane="mgmt").inc(3)
        reg.gauge("b").set(1.5)
        reg.histogram("c").observe(0.25)
        snap = reg.snapshot()
        assert snap["counters"]['a{plane="mgmt"}'] == 3
        assert snap["gauges"]["b"] == 1.5
        assert snap["histograms"]["c"]["count"] == 1
        import json

        assert json.loads(reg.to_json()) == snap

    def test_text_exporter_format(self):
        reg = obs.MetricsRegistry()
        reg.counter("writes_total", device="d0").inc(2)
        reg.histogram("sync_seconds").observe(0.5)
        text = reg.to_text()
        assert 'writes_total{device="d0"} 2' in text
        assert "sync_seconds_count 1" in text
        assert "sync_seconds_p50" in text

    def test_reset_clears_metrics(self):
        reg = obs.MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.counter("x").value == 0


class TestEnableDisable:
    def test_disabled_by_default(self):
        assert not obs.enabled()

    def test_span_is_noop_when_disabled(self):
        before = len(obs.TRACER.spans())
        with obs.span("nothing") as s:
            s.set(ignored=True)
        assert len(obs.TRACER.spans()) == before

    def test_enabled_scope_restores(self):
        assert not obs.enabled()
        with obs.enabled_scope():
            assert obs.enabled()
        assert not obs.enabled()

    def test_detail_tier(self):
        obs.enable()
        assert obs.enabled() and not obs.detail_enabled()
        obs.enable(detail=True)
        assert obs.detail_enabled()
        obs.disable()
        assert not obs.enabled() and not obs.detail_enabled()

    def test_registry_generation_advances_on_reset(self):
        reg = obs.MetricsRegistry()
        gen = reg.generation
        handle = reg.counter("x")
        reg.reset()
        assert reg.generation == gen + 1
        # stale handles must not alias the recreated metric
        assert reg.counter("x") is not handle


class TestConcurrency:
    def test_counter_loses_no_increments(self):
        reg = obs.MetricsRegistry()
        counter = reg.counter("hammered")
        n_threads, per_thread = 8, 10_000

        def hammer():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * per_thread

    def test_labelled_counters_from_many_threads(self):
        reg = obs.MetricsRegistry()
        n_threads, per_thread = 6, 2_000

        def hammer(idx):
            for _ in range(per_thread):
                # get-or-create races with other threads on purpose
                reg.counter("events", worker=str(idx % 2)).inc()

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = (
            reg.counter("events", worker="0").value
            + reg.counter("events", worker="1").value
        )
        assert total == n_threads * per_thread

    def test_histogram_concurrent_observe(self):
        reg = obs.MetricsRegistry()
        hist = reg.histogram("lat")
        n_threads, per_thread = 8, 5_000

        def hammer():
            for _ in range(per_thread):
                hist.observe(1.0)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        summary = hist.summary()
        assert summary["count"] == n_threads * per_thread
        assert summary["sum"] == pytest.approx(n_threads * per_thread)

    @pytest.mark.slow
    def test_reconnect_storm_counters(self, obs_on):
        """Sever the mgmt connection repeatedly through the proxy and
        check that net-layer counters stay consistent with the
        connection's own bookkeeping: no lost increments, nothing
        negative."""
        db = Database(
            simple_schema("net", {"Port": {"name": "string"}})
        )
        with ManagementServer(db, port=free_port()) as srv:
            injector = FaultInjector(*srv.address, port=free_port()).start()
            client = ManagementClient(*injector.address, policy=FAST)
            try:
                assert client.echo(["hello"]) == ["hello"]
                storms = 5
                for _ in range(storms):
                    seen = client.conn.reconnects
                    injector.sever()
                    wait_for(
                        lambda: client.conn.reconnects > seen
                        and client.conn.state == "connected",
                        what="reconnect",
                    )
                    assert client.echo(["ping"]) == ["ping"]
                reconnect_counter = obs.REGISTRY.counter(
                    "net_reconnects_total", conn="mgmt-client"
                )
                assert reconnect_counter.value == client.conn.reconnects
                assert reconnect_counter.value >= storms
                snap = obs.REGISTRY.snapshot()
                assert all(v >= 0 for v in snap["counters"].values())
                # every RETRYING transition recorded by the connection
                # is mirrored in the registry
                retrying = obs.REGISTRY.counter(
                    "net_transitions_total", conn="mgmt-client",
                    state="retrying",
                )
                assert retrying.value == client.conn.transitions.count(
                    "retrying"
                )
            finally:
                client.close()
                injector.stop()
