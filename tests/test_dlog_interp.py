"""Unit tests for the expression interpreter (semantics details)."""

import pytest

from repro.dlog import ast as A
from repro.dlog.interp import Evaluator, _int_div, _int_mod
from repro.dlog.parser import parse_program
from repro.dlog.typecheck import check_program
from repro.dlog.values import MapValue, StructValue
from repro.errors import EvalError


def make_evaluator(prelude=""):
    checked = check_program(parse_program(prelude or "input relation Nil(x: bool)"))
    return Evaluator(checked), checked


def eval_in_rule(expr_text, env, prelude="", var_decls=""):
    """Typecheck an expression inside a rule context and evaluate it."""
    # Build a tiny program binding variables via a relation.
    cols = ", ".join(f"{name}: {ty}" for name, ty in var_decls)
    text = f"""
    {prelude}
    input relation Env({cols})
    output relation Out(r: bool)
    Out(true) :- Env({", ".join(name for name, _ in var_decls)}),
        var result = {expr_text}, result == result.
    """
    checked = check_program(parse_program(text))
    rule = checked.ast.rules[0]
    assignment = rule.body[1]
    evaluator = Evaluator(checked)
    return evaluator.eval(assignment.expr, env)


class TestIntegerSemantics:
    def test_trunc_division(self):
        assert _int_div(7, 2) == 3
        assert _int_div(-7, 2) == -3  # C-style, not Python floor
        assert _int_div(7, -2) == -3

    def test_trunc_modulo(self):
        assert _int_mod(7, 2) == 1
        assert _int_mod(-7, 2) == -1

    def test_division_by_zero(self):
        with pytest.raises(EvalError):
            _int_div(1, 0)
        with pytest.raises(EvalError):
            _int_mod(1, 0)

    def test_bit_wrap_on_add(self):
        value = eval_in_rule("x + 1", {"x": 255}, var_decls=[("x", "bit<8>")])
        assert value == 0

    def test_signed_wrap(self):
        value = eval_in_rule("x + 1", {"x": 127}, var_decls=[("x", "signed<8>")])
        assert value == -128

    def test_bigint_does_not_wrap(self):
        value = eval_in_rule("x + 1", {"x": 2**80}, var_decls=[("x", "bigint")])
        assert value == 2**80 + 1

    def test_bitwise_not_wraps(self):
        value = eval_in_rule("~x", {"x": 0}, var_decls=[("x", "bit<8>")])
        assert value == 255

    def test_shift(self):
        value = eval_in_rule("x << 4", {"x": 1}, var_decls=[("x", "bit<8>")])
        assert value == 16
        value = eval_in_rule("x << 8", {"x": 1}, var_decls=[("x", "bit<8>")])
        assert value == 0  # shifted out


class TestValuesAndCalls:
    def test_match_binds_fields(self):
        prelude = "typedef sh_t = Circle{r: bigint} | Square{s: bigint}"
        value = eval_in_rule(
            "match (x) { Circle{r} -> r * 3, Square{s} -> s * 4 }",
            {"x": StructValue("Circle", (5,))},
            prelude=prelude,
            var_decls=[("x", "sh_t")],
        )
        assert value == 15

    def test_match_no_arm_raises(self):
        evaluator, _ = make_evaluator()
        expr = A.MatchExpr(A.Var("x"), [(A.PLit(1), A.Lit(10))])
        with pytest.raises(EvalError, match="no match arm"):
            evaluator.eval(expr, {"x": 2})

    def test_user_function_recursion_guard(self):
        prelude = "function boom(x: bigint): bigint { boom(x) }"
        with pytest.raises(EvalError, match="depth"):
            eval_in_rule("boom(x)", {"x": 1}, prelude=prelude,
                         var_decls=[("x", "bigint")])

    def test_user_function_result_coerced(self):
        prelude = "function wrap(x: bit<4>): bit<4> { x + 1 }"
        value = eval_in_rule("wrap(x)", {"x": 15}, prelude=prelude,
                             var_decls=[("x", "bit<4>")])
        assert value == 0

    def test_stdlib_via_call(self):
        evaluator, _ = make_evaluator()
        assert evaluator.call("len", ["abc"]) == 3
        assert evaluator.call("to_uppercase", ["ab"]) == "AB"
        assert evaluator.call("unwrap_or", [StructValue("None", ()), 9]) == 9

    def test_unknown_function_raises(self):
        evaluator, _ = make_evaluator()
        with pytest.raises(EvalError, match="unknown function"):
            evaluator.call("frobnicate", [])

    def test_builtin_error_wrapped(self):
        evaluator, _ = make_evaluator()
        with pytest.raises(EvalError):
            evaluator.call("vec_sort", [(1, "a")])

    def test_field_access_on_struct(self):
        prelude = "typedef pt = Pt{x: bigint, y: bigint}"
        value = eval_in_rule(
            "p.y", {"p": StructValue("Pt", (3, 4))}, prelude=prelude,
            var_decls=[("p", "pt")],
        )
        assert value == 4

    def test_tuple_index(self):
        value = eval_in_rule(
            "t.1", {"t": (7, 8)}, var_decls=[("t", "(bigint, bigint)")]
        )
        assert value == 8

    def test_map_builtins(self):
        m = MapValue([("a", 1)])
        evaluator, _ = make_evaluator()
        assert evaluator.call("map_contains_key", [m, "a"]) is True
        m2 = evaluator.call("map_insert", [m, "b", 2])
        assert m2["b"] == 2
        assert "b" not in m  # immutability

    def test_hash_is_stable(self):
        evaluator, _ = make_evaluator()
        a = evaluator.call("hash64", [("x", 1)])
        b = evaluator.call("hash64", [("x", 1)])
        assert a == b
        assert 0 <= a < 2**64


class TestPatternMatching:
    def test_bind_always_rebinds(self):
        evaluator, _ = make_evaluator()
        env = {"x": 1}
        assert evaluator.match(A.PVar("x"), 2, env, bind_always=True)
        assert env["x"] == 2

    def test_bind_check_mode_compares(self):
        evaluator, _ = make_evaluator()
        env = {"x": 1}
        assert not evaluator.match(A.PVar("x"), 2, env, bind_always=False)
        assert evaluator.match(A.PVar("x"), 1, env, bind_always=False)

    def test_tuple_pattern_arity_mismatch(self):
        evaluator, _ = make_evaluator()
        pat = A.PTuple([A.PVar("a"), A.PVar("b")])
        assert not evaluator.match(pat, (1, 2, 3), {}, bind_always=True)

    def test_struct_pattern_wrong_ctor(self):
        evaluator, _ = make_evaluator()
        pat = A.PStruct("Some", [(None, A.PVar("v"))])
        assert not evaluator.match(
            pat, StructValue("None", ()), {}, bind_always=True
        )

    def test_wildcard_always_matches(self):
        evaluator, _ = make_evaluator()
        assert evaluator.match(A.PWildcard(), object(), {}, bind_always=False)
