"""Unit tests for the rule/expression typechecker."""

import pytest

from repro.dlog import types as T
from repro.dlog.parser import parse_program
from repro.dlog.typecheck import check_program
from repro.errors import TypeCheckError


def check(text):
    return check_program(parse_program(text))


class TestRelationChecks:
    def test_duplicate_relation_rejected(self):
        with pytest.raises(TypeCheckError):
            check("input relation R(x: bool)\ninput relation R(x: bool)")

    def test_duplicate_column_rejected(self):
        with pytest.raises(TypeCheckError):
            check("input relation R(x: bool, x: string)")

    def test_unknown_relation_in_body(self):
        with pytest.raises(TypeCheckError, match="unknown relation"):
            check("output relation Out(x: bool)\nOut(x) :- Nope(x).")

    def test_unknown_type_in_column(self):
        with pytest.raises(TypeCheckError, match="unknown type"):
            check("input relation R(x: frobnitz)")

    def test_arity_mismatch_in_body(self):
        with pytest.raises(TypeCheckError, match="argument"):
            check(
                "input relation R(x: bool, y: bool)\n"
                "output relation Out(x: bool)\n"
                "Out(x) :- R(x)."
            )

    def test_rule_into_input_relation_rejected(self):
        with pytest.raises(TypeCheckError, match="input relation"):
            check(
                "input relation A(x: bool)\n"
                "input relation B(x: bool)\n"
                "A(x) :- B(x)."
            )


class TestRuleTyping:
    def test_variable_type_from_atom(self):
        chk = check(
            "input relation R(x: bit<32>)\noutput relation Out(x: bit<32>)\n"
            "Out(x) :- R(x)."
        )
        rule = chk.ast.rules[0]
        assert chk.rule_vars[id(rule)] == {"x": T.TBit(32)}

    def test_join_variable_types_must_agree(self):
        with pytest.raises(TypeCheckError, match="type"):
            check(
                "input relation A(x: bit<32>)\n"
                "input relation B(x: string)\n"
                "output relation Out(x: bit<32>)\n"
                "Out(x) :- A(x), B(x)."
            )

    def test_head_type_mismatch(self):
        with pytest.raises(TypeCheckError, match="head column"):
            check(
                "input relation R(x: bit<32>)\n"
                "output relation Out(x: string)\n"
                "Out(x) :- R(x)."
            )

    def test_guard_must_be_bool(self):
        with pytest.raises(TypeCheckError, match="guard"):
            check(
                "input relation R(x: bigint)\noutput relation Out(x: bigint)\n"
                "Out(x) :- R(x), x + 1."
            )

    def test_negation_cannot_bind(self):
        with pytest.raises(TypeCheckError, match="unbound"):
            check(
                "input relation A(x: bigint)\n"
                "input relation B(x: bigint, y: bigint)\n"
                "output relation Out(x: bigint)\n"
                "Out(x) :- A(x), not B(x, y)."
            )

    def test_negation_with_wildcard_ok(self):
        check(
            "input relation A(x: bigint)\n"
            "input relation B(x: bigint, y: bigint)\n"
            "output relation Out(x: bigint)\n"
            "Out(x) :- A(x), not B(x, _)."
        )

    def test_wildcard_in_head_rejected(self):
        with pytest.raises(TypeCheckError, match="wildcard"):
            check(
                "input relation R(x: bool)\noutput relation Out(x: bool)\n"
                "Out(_) :- R(_)."
            )

    def test_assignment_binds(self):
        chk = check(
            "input relation R(x: bigint)\noutput relation Out(y: bigint)\n"
            "Out(y) :- R(x), var y = x * 2."
        )
        rule = chk.ast.rules[0]
        assert chk.rule_vars[id(rule)]["y"] == T.BIGINT

    def test_assignment_rebind_rejected(self):
        with pytest.raises(TypeCheckError, match="already bound"):
            check(
                "input relation R(x: bigint)\noutput relation Out(x: bigint)\n"
                "Out(x) :- R(x), var x = 1."
            )

    def test_literal_adopts_column_type(self):
        check(
            "input relation R(x: bit<12>)\noutput relation Out(x: bit<12>)\n"
            "Out(x) :- R(x), x > 5."
        )

    def test_literal_out_of_range_for_column(self):
        with pytest.raises(TypeCheckError, match="range"):
            check(
                "input relation R(x: bit<4>)\noutput relation Out(x: bit<4>)\n"
                "Out(x) :- R(x), x > 100."
            )

    def test_flatmap_over_vec(self):
        chk = check(
            "input relation R(v: Vec<string>)\noutput relation Out(s: string)\n"
            "Out(s) :- R(v), var s = FlatMap(v)."
        )
        rule = chk.ast.rules[0]
        assert chk.rule_vars[id(rule)]["s"] == T.STRING

    def test_flatmap_over_non_collection_rejected(self):
        with pytest.raises(TypeCheckError, match="FlatMap"):
            check(
                "input relation R(v: string)\noutput relation Out(s: string)\n"
                "Out(s) :- R(v), var s = FlatMap(v)."
            )

    def test_aggregate_scoping(self):
        chk = check(
            "input relation Port(p: bit<32>, sw: string)\n"
            "output relation Count(sw: string, n: bigint)\n"
            "Count(sw, n) :- Port(p, sw), var n = Aggregate((sw), count())."
        )
        rule = chk.ast.rules[0]
        assert set(chk.rule_vars[id(rule)]) == {"sw", "n"}

    def test_aggregate_using_dropped_var_rejected(self):
        with pytest.raises(TypeCheckError, match="unbound variable"):
            check(
                "input relation Port(p: bit<32>, sw: string)\n"
                "output relation Bad(sw: string, p: bit<32>)\n"
                "Bad(sw, p) :- Port(p, sw), var n = Aggregate((sw), count())."
            )

    def test_sum_aggregate_type(self):
        chk = check(
            "input relation M(k: string, v: bit<64>)\n"
            "output relation S(k: string, total: bit<64>)\n"
            "S(k, total) :- M(k, v), var total = Aggregate((k), sum(v))."
        )
        rule = chk.ast.rules[0]
        assert chk.rule_vars[id(rule)]["total"] == T.TBit(64)


class TestTypedefsAndPatterns:
    SRC = """
    typedef mode_t = Access | Trunk{native: bit<12>}
    input relation Port(id: bit<32>, mode: mode_t)
    output relation Native(port: bit<32>, vlan: bit<12>)
    """

    def test_constructor_pattern_in_atom(self):
        check(self.SRC + "Native(p, v) :- Port(p, Trunk{v}).")

    def test_named_constructor_pattern(self):
        check(self.SRC + "Native(p, v) :- Port(p, Trunk{native: v}).")

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeCheckError, match="unknown field"):
            check(self.SRC + "Native(p, v) :- Port(p, Trunk{nonesuch: v}).")

    def test_wrong_constructor_type_rejected(self):
        with pytest.raises(TypeCheckError):
            check(
                "typedef a_t = A{x: bool}\ntypedef b_t = B{x: bool}\n"
                "input relation R(v: a_t)\noutput relation Out(x: bool)\n"
                "Out(x) :- R(B{x})."
            )

    def test_match_expression_over_union(self):
        check(
            self.SRC
            + """
            Native(p, v) :- Port(p, m),
                var v = match (m) { Access -> 1, Trunk{n} -> n }.
            """
        )

    def test_field_access_on_union_rejected(self):
        with pytest.raises(TypeCheckError, match="union"):
            check(self.SRC + "Native(p, m.native) :- Port(p, m).")

    def test_option_some_construction(self):
        check(
            "input relation R(x: bigint)\n"
            "output relation Out(o: Option<bigint>)\n"
            "Out(Some{x}) :- R(x)."
        )

    def test_struct_field_access(self):
        check(
            "typedef pt = Pt{x: bigint, y: bigint}\n"
            "input relation R(p: pt)\noutput relation Out(x: bigint)\n"
            "Out(p.x) :- R(p)."
        )


class TestFunctions:
    def test_function_return_type_checked(self):
        with pytest.raises(TypeCheckError, match="return"):
            check('function f(x: bigint): string { x + 1 }')

    def test_function_call_in_rule(self):
        check(
            "function double(x: bigint): bigint { x * 2 }\n"
            "input relation R(x: bigint)\noutput relation Out(x: bigint)\n"
            "Out(double(x)) :- R(x)."
        )

    def test_wrong_argument_count(self):
        with pytest.raises(TypeCheckError, match="argument"):
            check(
                "function double(x: bigint): bigint { x * 2 }\n"
                "input relation R(x: bigint)\noutput relation Out(x: bigint)\n"
                "Out(double(x, x)) :- R(x)."
            )

    def test_builtin_call(self):
        check(
            "input relation R(s: string)\noutput relation Out(n: bigint)\n"
            "Out(len(s)) :- R(s)."
        )

    def test_builtin_bad_arg(self):
        with pytest.raises(TypeCheckError):
            check(
                "input relation R(x: bigint)\noutput relation Out(n: bigint)\n"
                "Out(len(x)) :- R(x)."
            )

    def test_unknown_function(self):
        with pytest.raises(TypeCheckError, match="unknown function"):
            check(
                "input relation R(x: bigint)\noutput relation Out(x: bigint)\n"
                "Out(frob(x)) :- R(x)."
            )


class TestExpressions:
    PRE = "input relation R(a: bit<8>, s: string)\n"

    def test_mixed_operand_types_rejected(self):
        with pytest.raises(TypeCheckError, match="disagree|operand"):
            check(
                self.PRE + "output relation Out(x: bit<8>)\n"
                "Out(a) :- R(a, s), var bad = a + s."
            )

    def test_literal_on_left_adopts_right_type(self):
        check(
            self.PRE + "output relation Out(x: bit<8>)\n"
            "Out(a) :- R(a, s), var y = 1 + a, y > 2."
        )

    def test_concat_strings(self):
        check(
            self.PRE + "output relation Out(x: string)\n"
            'Out(s ++ "!") :- R(_, s).'
        )

    def test_unary_minus_on_bit_rejected(self):
        with pytest.raises(TypeCheckError, match="unary -"):
            check(
                self.PRE + "output relation Out(x: bit<8>)\n"
                "Out(a) :- R(a, _), var y = -a."
            )

    def test_cast_bit_to_bigint(self):
        check(
            self.PRE + "output relation Out(x: bigint)\n"
            "Out(a as bigint) :- R(a, _)."
        )

    def test_cast_string_rejected(self):
        with pytest.raises(TypeCheckError, match="cast"):
            check(
                self.PRE + "output relation Out(x: bigint)\n"
                "Out(s as bigint) :- R(_, s)."
            )

    def test_if_branch_types_must_agree(self):
        with pytest.raises(TypeCheckError, match="branches"):
            check(
                self.PRE + "output relation Out(x: string)\n"
                'Out(y) :- R(a, s), var y = if (a > 0) s else 3.'
            )

    def test_empty_vec_needs_context(self):
        with pytest.raises(TypeCheckError, match="empty vector"):
            check(
                self.PRE + "output relation Out(x: bigint)\n"
                "Out(len(v)) :- R(a, _), var v = []."
            )
