"""Controller restart & reconciliation tests.

A controller that crashes and restarts faces a device that already
holds entries from its previous life — possibly stale ones.  With
``start(reconcile=True)`` the new controller must converge the device
to exactly the state the current configuration derives, without
duplicate-insert failures and without touching correct entries.
"""

import pytest

from repro.core.controller import NerpaController
from repro.core.pipeline import nerpa_build
from repro.mgmt.database import Database
from repro.mgmt.schema import simple_schema
from repro.p4.tables import FieldMatch, TableEntry

SCHEMA = simple_schema(
    "net", {"PortCfg": {"port": "integer", "out_port": "integer"}}
)

P4 = """
header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
struct headers_t { eth_t eth; }
struct meta_t { bit<1> pad; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
         inout standard_metadata_t std) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control Ing(inout headers_t hdr, inout meta_t m,
            inout standard_metadata_t std) {
    action forward(bit<16> port) { std.egress_spec = port; }
    action drop() { mark_to_drop(); }
    table patch {
        key = { std.ingress_port : exact; }
        actions = { forward; drop; }
        default_action = drop();
    }
    apply { patch.apply(); }
}
"""

RULES = "Patch(p as bit<16>, PatchActionForward{o as bit<16>}) :- PortCfg(_, p, o)."


def build():
    project = nerpa_build(SCHEMA, RULES, P4)
    db = Database(project.schema)
    switch = project.new_simulator(n_ports=16)
    return project, db, switch


def add_port(db, port, out_port):
    db.transact(
        [
            {
                "op": "insert",
                "table": "PortCfg",
                "row": {"port": port, "out_port": out_port},
            }
        ]
    )


class TestReconcile:
    def test_fresh_start_against_populated_device_fails_without_reconcile(self):
        project, db, switch = build()
        add_port(db, 1, 5)
        NerpaController(project, db, [switch]).start().stop()
        assert len(switch.table("patch")) == 1

        # Second controller, same device, no reconciliation: the blind
        # initial insert collides.
        db2 = Database(project.schema)
        add_port(db2, 1, 5)
        from repro.p4runtime.api import WriteError

        with pytest.raises(WriteError):
            NerpaController(project, db2, [switch]).start()

    def test_reconcile_preserves_correct_entries(self):
        project, db, switch = build()
        add_port(db, 1, 5)
        add_port(db, 2, 6)
        NerpaController(project, db, [switch]).start().stop()

        db2 = Database(project.schema)
        add_port(db2, 1, 5)
        add_port(db2, 2, 6)
        controller = NerpaController(project, db2, [switch])
        controller.start(reconcile=True)
        assert len(switch.table("patch")) == 2
        assert switch.table("patch").lookup([1]) == ("forward", (5,), True)
        # Nothing needed fixing: no reconciliation writes.
        assert controller.entries_written == 0

    def test_reconcile_removes_stale_entries(self):
        project, db, switch = build()
        add_port(db, 1, 5)
        NerpaController(project, db, [switch]).start().stop()
        # Leftover garbage from a previous life.
        switch.table("patch").insert(
            TableEntry([FieldMatch.exact(9)], "forward", [9])
        )

        db2 = Database(project.schema)
        add_port(db2, 1, 5)
        NerpaController(project, db2, [switch]).start(reconcile=True)
        assert len(switch.table("patch")) == 1
        # Port 9 falls back to the default action (miss).
        assert switch.table("patch").lookup([9])[2] is False

    def test_reconcile_fixes_wrong_action_params(self):
        project, db, switch = build()
        add_port(db, 1, 5)
        NerpaController(project, db, [switch]).start().stop()

        # New config says port 1 -> 7; the device still says -> 5.
        db2 = Database(project.schema)
        add_port(db2, 1, 7)
        NerpaController(project, db2, [switch]).start(reconcile=True)
        assert switch.table("patch").lookup([1]) == ("forward", (7,), True)
        assert len(switch.table("patch")) == 1

    def test_reconcile_inserts_missing_entries(self):
        project, db, switch = build()  # device starts empty
        add_port(db, 3, 4)
        controller = NerpaController(project, db, [switch])
        controller.start(reconcile=True)
        assert switch.table("patch").lookup([3]) == ("forward", (4,), True)

    def test_reconciled_controller_stays_incremental(self):
        project, db, switch = build()
        add_port(db, 1, 5)
        NerpaController(project, db, [switch]).start().stop()

        db2 = Database(project.schema)
        add_port(db2, 1, 5)
        controller = NerpaController(project, db2, [switch])
        controller.start(reconcile=True)
        add_port(db2, 2, 6)  # post-restart change flows normally
        controller.drain()
        assert switch.table("patch").lookup([2]) == ("forward", (6,), True)
