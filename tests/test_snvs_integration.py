"""Full-stack integration tests: the snvs switch through the whole
Nerpa pipeline (database -> incremental rules -> P4Runtime -> simulator),
including the MAC-learning digest feedback loop.

This is the reproduction of the paper's §4.3 integration test.
"""

import pytest

from repro.apps.snvs import SnvsNetwork, build_snvs
from repro.p4.headers import EthernetView

A = "aa:00:00:00:00:0a"
B = "aa:00:00:00:00:0b"
C = "aa:00:00:00:00:0c"


@pytest.fixture(scope="module")
def built_project():
    return build_snvs()


@pytest.fixture()
def net():
    network = SnvsNetwork(n_ports=16)
    network.add_vlan(10, "tenants")
    network.add_vlan(20, "storage")
    for port in range(4):
        network.add_access_port(port, vlan=10)
    for port in range(4, 6):
        network.add_access_port(port, vlan=20)
    return network


class TestBuild:
    def test_compiles(self, built_project):
        assert set(built_project.bindings.table_relations) == {
            "InVlan",
            "Blocked",
            "Learned",
            "Fwd",
            "MirrorTap",
            "OutTag",
        }

    def test_digest_binding(self, built_project):
        assert built_project.bindings.digest_relations == {
            "mac_learn_t": "MacLearn"
        }

    def test_loc_in_papers_ballpark(self, built_project):
        # §4.3: snvs is ~350 LoC of DDlog (250 rules, 100 generated) —
        # our rule set is smaller but the same order of magnitude.
        report = built_project.loc_report()
        assert 15 <= report["dlog_rules"] <= 350
        assert 10 <= report["dlog_generated"] <= 120
        assert report["schema_tables"] == 5


class TestConfigurationSync:
    def test_port_rows_become_table_entries(self, net):
        # 6 access ports -> 2 in_vlan entries each (untagged classify;
        # ternary table also holds nothing else).
        assert len(net.switch.table("in_vlan")) == 6
        assert len(net.switch.table("out_tag")) == 6

    def test_multicast_groups_follow_vlans(self, net):
        assert net.switch.multicast_groups[10] == [0, 1, 2, 3]
        assert net.switch.multicast_groups[20] == [4, 5]

    def test_port_removal_retracts_entries(self, net):
        net.remove_port(3)
        assert len(net.switch.table("in_vlan")) == 5
        assert net.switch.multicast_groups[10] == [0, 1, 2]

    def test_port_update_is_incremental(self, net):
        before = net.controller.sync_count
        net.add_access_port(8, vlan=10)
        assert net.controller.sync_count == before + 1
        assert net.switch.multicast_groups[10] == [0, 1, 2, 3, 8]

    def test_undeclared_vlan_has_no_effect(self, net):
        net.add_access_port(9, vlan=99)  # VLAN 99 not declared
        assert 99 not in net.switch.multicast_groups
        # No in_vlan entry either: traffic on port 9 hits default drop.
        assert net.send(9, B, A) == []


class TestForwardingAndLearning:
    def test_unknown_dst_floods_vlan_members_only(self, net):
        outputs = net.send(0, B, A)
        assert sorted(p for p, _ in outputs) == [1, 2, 3]  # not 4,5 (vlan 20)

    def test_learning_installs_forwarding_entry(self, net):
        net.send(0, B, A)  # A learned at port 0
        outputs = net.send(1, A, B)  # B->A should now unicast
        assert [p for p, _ in outputs] == [0]

    def test_learning_survives_only_for_that_vlan(self, net):
        net.send(0, B, A)  # learn A on vlan 10
        outputs = net.send(4, A, C)  # vlan 20: A unknown there
        assert sorted(p for p, _ in outputs) == [5]

    def test_learning_disabled_blocks_feedback(self):
        network = SnvsNetwork(n_ports=8, learning=False)
        network.add_vlan(10)
        network.add_access_port(0, vlan=10)
        network.add_access_port(1, vlan=10)
        network.send(0, B, A)
        assert network.fwd_entries() == 0
        outputs = network.send(1, A, B)
        assert [p for p, _ in outputs] == [0]  # still floods (only member)

    def test_enabling_learning_later_applies_retroactively(self):
        network = SnvsNetwork(n_ports=8, learning=False)
        network.add_vlan(10)
        network.add_access_port(0, vlan=10)
        network.add_access_port(1, vlan=10)
        network.send(0, B, A)  # digest recorded, rule gated off
        network.set_learning(True)
        # The previously received digest now derives entries.
        assert network.fwd_entries() == 1

    def test_digest_suppressed_once_learned(self, net):
        net.send(0, B, A)
        before = net.controller.digests_processed
        net.send(0, B, A)
        assert net.controller.digests_processed == before


class TestVlanTagging:
    def test_trunk_port_emits_tagged(self, net):
        net.add_trunk_port(10, native_vlan=10, trunks=[10, 20])
        outputs = net.send(0, B, A)  # flood vlan 10
        by_port = {p: data for p, data in outputs}
        assert 10 in by_port
        view = EthernetView(by_port[10])
        assert view.vlan == 10
        # Access ports receive untagged.
        assert EthernetView(by_port[1]).vlan is None

    def test_tagged_frame_into_trunk(self, net):
        net.add_trunk_port(10, native_vlan=10, trunks=[10, 20])
        outputs = net.send(10, B, A, vlan=20)
        # Flooded into vlan 20 members (ports 4, 5), untagged there.
        assert sorted(p for p, _ in outputs) == [4, 5]
        assert all(EthernetView(d).vlan is None for _, d in outputs)

    def test_tagged_frame_with_disallowed_vid_dropped(self, net):
        net.add_trunk_port(10, native_vlan=10, trunks=[10])
        assert net.send(10, B, A, vlan=20) == []

    def test_tagged_frame_into_access_port_dropped(self, net):
        assert net.send(0, B, A, vlan=10) == []


class TestAclAndMirror:
    def test_blocked_mac_dropped(self, net):
        net.block_mac(10, A)
        assert net.send(0, B, A) == []
        # Blocked frames are not learned either.
        assert net.fwd_entries() == 0

    def test_unblocking_restores(self, net):
        net.block_mac(10, A)
        net.db.transact(
            [{"op": "delete", "table": "BlockedMac", "where": []}]
        )
        net.controller.drain()
        assert len(net.send(0, B, A)) == 3

    def test_mirror_copies_traffic(self, net):
        net.add_mirror(src_port=0, dst_port=7)
        outputs = net.send(0, B, A)
        ports = sorted(p for p, _ in outputs)
        assert 7 in ports  # mirror copy
        assert ports == [1, 2, 3, 7]

    def test_mirror_removal(self, net):
        net.add_mirror(src_port=0, dst_port=7)
        net.db.transact([{"op": "delete", "table": "Mirror", "where": []}])
        net.controller.drain()
        outputs = net.send(0, B, A)
        assert sorted(p for p, _ in outputs) == [1, 2, 3]


class TestControllerMetrics:
    def test_sync_latencies_recorded(self, net):
        metrics = net.metrics()
        assert metrics["syncs"] > 0
        assert metrics["mean_sync_latency"] > 0
        assert metrics["entries_written"] > 0


class TestRemoteTransports:
    """The same stack with TCP between all three planes."""

    def test_full_stack_over_tcp(self):
        from repro.core.controller import NerpaController
        from repro.mgmt.client import ManagementClient
        from repro.mgmt.database import Database
        from repro.mgmt.server import ManagementServer
        from repro.p4runtime.client import P4RuntimeClient
        from repro.p4runtime.server import P4RuntimeServer

        project = build_snvs()
        db = Database(project.schema)
        sim = project.new_simulator(n_ports=8)

        with ManagementServer(db) as mgmt_srv, P4RuntimeServer(sim) as dev_srv:
            mgmt_client = ManagementClient(*mgmt_srv.address)
            dev_client = P4RuntimeClient(*dev_srv.address)
            controller = NerpaController(
                project, mgmt_client, [dev_client]
            ).start()
            try:
                mgmt_client.transact(
                    [
                        {
                            "op": "insert",
                            "table": "Vlan",
                            "row": {"vid": 10, "description": ""},
                        },
                        {
                            "op": "insert",
                            "table": "SwitchConfig",
                            "row": {"name": "s", "learning_enabled": True},
                        },
                    ]
                )
                for port in range(3):
                    mgmt_client.transact(
                        [
                            {
                                "op": "insert",
                                "table": "Port",
                                "row": {
                                    "name": f"p{port}",
                                    "port_num": port,
                                    "vlan_mode": "access",
                                    "tag": 10,
                                },
                            }
                        ]
                    )
                # Wait until the controller has synced all three ports.
                import time

                deadline = time.time() + 5.0
                while time.time() < deadline:
                    if len(sim.table("in_vlan")) == 3:
                        break
                    time.sleep(0.01)
                assert len(sim.table("in_vlan")) == 3

                outputs = dev_client.inject(
                    0,
                    __import__(
                        "repro.p4.headers", fromlist=["ethernet"]
                    ).ethernet(B, A),
                )
                assert sorted(p for p, _ in outputs) == [1, 2]

                # Learning over the remote digest path.
                deadline = time.time() + 5.0
                while time.time() < deadline:
                    if len(sim.table("fwd")) == 1:
                        break
                    time.sleep(0.01)
                assert len(sim.table("fwd")) == 1
            finally:
                controller.stop()
                mgmt_client.close()
                dev_client.close()
