"""Tests for LoC accounting and benchmark statistics helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.loc import count_loc
from repro.analysis.stats import mean, percentile, stdev


class TestLoc:
    def test_blank_lines_skipped(self):
        assert count_loc("a = 1\n\n\nb = 2\n") == 2

    def test_python_comments(self):
        assert count_loc("# comment\nx = 1  # trailing\n") == 1

    def test_dlog_line_comments(self):
        assert count_loc("// c\nR(x) :- S(x).\n", kind="dlog") == 1

    def test_dlog_block_comments(self):
        text = "/* one\ntwo\nthree */\nR(x) :- S(x).\n"
        assert count_loc(text, kind="dlog") == 1

    def test_block_comment_with_trailing_code(self):
        assert count_loc("/* c */ R(x) :- S(x).", kind="dlog") == 1

    def test_empty(self):
        assert count_loc("", kind="p4") == 0


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stdev_singleton(self):
        assert stdev([5.0]) == 0.0

    def test_stdev(self):
        assert abs(stdev([1.0, 3.0]) - 2**0.5) < 1e-12

    def test_percentile_bounds(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5

    def test_percentile_bad_pct(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_percentile_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    def test_percentile_within_range(self, values):
        p50 = percentile(values, 50)
        assert min(values) <= p50 <= max(values)

    @given(st.lists(st.floats(0, 1e6), min_size=2, max_size=50))
    def test_percentile_monotone(self, values):
        assert percentile(values, 25) <= percentile(values, 75)

    def test_percentile_denormal_clamps_to_bracket(self):
        """Regression for the bracket clamp: interpolating between two
        denormals can underflow below the lower bracket value
        (5e-324 * 0.5 rounds to 0.0); the result must stay inside
        [lo_v, hi_v]."""
        tiny = 5e-324  # smallest positive denormal
        values = [tiny, tiny, 3 * tiny]
        p50 = percentile(values, 50)
        assert tiny <= p50 <= 3 * tiny

    def test_percentile_denormal_interpolation_never_escapes(self):
        tiny = 5e-324
        values = [tiny, 2 * tiny, 4 * tiny, 8 * tiny]
        for pct in range(0, 101, 5):
            p = percentile(values, pct)
            assert values[0] <= p <= values[-1], (pct, p)

    @given(
        st.lists(
            st.floats(min_value=5e-324, max_value=1e-300), min_size=2, max_size=20
        ),
        st.integers(0, 100),
    )
    def test_percentile_subnormal_within_range(self, values, pct):
        """Property form of the clamp regression: any percentile of any
        subnormal-range sample stays within [min, max]."""
        p = percentile(values, pct)
        assert min(values) <= p <= max(values)
