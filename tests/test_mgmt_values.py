"""Property tests for the management-plane value model and wire codec."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.mgmt.schema import ColumnType
from repro.mgmt.values import check_value, decode_value, encode_value

atoms = {
    "integer": st.integers(-(2**62), 2**62),
    "real": st.floats(allow_nan=False, allow_infinity=False, width=32),
    "boolean": st.booleans(),
    "string": st.text(max_size=20),
    "uuid": st.text(alphabet="0123456789abcdef", min_size=8, max_size=8),
}


@st.composite
def column_values(draw):
    atom = draw(st.sampled_from(sorted(atoms)))
    shape = draw(st.sampled_from(["scalar", "optional", "set", "map"]))
    if shape == "scalar":
        ctype = ColumnType(atom)
        value = draw(atoms[atom])
    elif shape == "optional":
        ctype = ColumnType(atom, min=0, max=1)
        value = draw(st.none() | atoms[atom])
    elif shape == "set":
        ctype = ColumnType(atom, min=0, max="unlimited")
        value = frozenset(draw(st.lists(atoms[atom], max_size=5)))
    else:
        value_atom = draw(st.sampled_from(sorted(atoms)))
        ctype = ColumnType(atom, value_atom, min=0, max="unlimited")
        value = draw(
            st.dictionaries(atoms[atom], atoms[value_atom], max_size=5)
        )
    return ctype, value


class TestWireCodec:
    @settings(suppress_health_check=[HealthCheck.too_slow])
    @given(column_values())
    def test_encode_decode_round_trip(self, pair):
        ctype, value = pair
        normalized = check_value(ctype, value)
        wire = encode_value(ctype, normalized)
        assert decode_value(ctype, wire) == normalized

    @settings(suppress_health_check=[HealthCheck.too_slow])
    @given(column_values())
    def test_wire_form_is_json_compatible(self, pair):
        import json

        ctype, value = pair
        wire = encode_value(ctype, check_value(ctype, value))
        json.loads(json.dumps(wire))  # must not raise

    def test_optional_none_encodes_as_empty_set(self):
        ctype = ColumnType("integer", min=0, max=1)
        assert encode_value(ctype, None) == ["set", []]

    def test_uuid_tagging(self):
        ctype = ColumnType("uuid")
        assert encode_value(ctype, "abc123") == ["uuid", "abc123"]
        assert decode_value(ctype, ["uuid", "abc123"]) == "abc123"

    def test_scalar_as_singleton_set_decodes(self):
        ctype = ColumnType("integer")
        assert decode_value(ctype, ["set", [5]]) == 5

    def test_scalar_multi_set_rejected(self):
        ctype = ColumnType("integer")
        with pytest.raises(SchemaError):
            decode_value(ctype, ["set", [1, 2]])

    def test_optional_multi_set_rejected(self):
        ctype = ColumnType("integer", min=0, max=1)
        with pytest.raises(SchemaError):
            decode_value(ctype, ["set", [1, 2]])


class TestCheckValue:
    def test_bool_not_accepted_as_integer(self):
        with pytest.raises(SchemaError):
            check_value(ColumnType("integer"), True)

    def test_set_max_enforced(self):
        ctype = ColumnType("integer", min=0, max=2)
        with pytest.raises(SchemaError):
            check_value(ctype, {1, 2, 3})

    def test_set_min_enforced(self):
        ctype = ColumnType("integer", min=1, max="unlimited")
        with pytest.raises(SchemaError):
            check_value(ctype, frozenset())

    def test_bare_scalar_promoted_to_singleton_set(self):
        ctype = ColumnType("integer", min=0, max="unlimited")
        assert check_value(ctype, 5) == frozenset({5})

    def test_map_key_type_enforced(self):
        ctype = ColumnType("string", "string", min=0, max="unlimited")
        with pytest.raises(SchemaError):
            check_value(ctype, {1: "x"})
