"""The event-loop apply plane: reactor, aio transport, fan-out channels.

Covers the multiplexed stage-3 plane that replaces per-device writer
threads:

* :class:`~repro.net.aio.Reactor` — cross-thread ``submit``,
  ``call_later`` timers, callback-error survival;
* :class:`~repro.net.aio.AioConnection` — blocking and async calls,
  per-call deadlines, reconnect after a server restart, fail-fast once
  broken, write-buffer watermarks (and the no-wedge guarantee: parked
  drain callbacks fire when the transport dies);
* :class:`~repro.core.fanout.DeviceChannel` — per-device FIFO with at
  most one operation in flight, error deferral, idempotent completion;
* the controller on the aio plane — plane selection, fan-out metrics,
  resync barrier/supersede semantics;
* **differential threads-vs-aio**: the same churn through both apply
  planes must produce identical per-device write order (uncoalesced)
  and identical final tables, including the quarantine and
  resync/supersede paths;
* :class:`~repro.p4runtime.farm.DeviceFarm` +
  :class:`~repro.p4runtime.aio_client.AioP4RuntimeClient` — device
  routing, receiver-side FIFO verification via batch ``seq`` ranges,
  and non-blocking slow-device ack delays.
"""

import json
import socket
import threading
import time

import pytest

from repro.core.controller import NerpaController
from repro.core.fanout import IDLE, DeviceChannel, FanoutPlane
from repro.core.pipeline import nerpa_build
from repro.errors import ConnectionLostError, ProtocolError, ReproError
from repro.mgmt.database import Database
from repro.mgmt.schema import simple_schema
from repro.net import RetryPolicy
from repro.net.aio import AioConnection, Reactor
from repro.net.resilient import BROKEN, CONNECTED, RETRYING
from repro.p4.tables import FieldMatch, TableEntry
from repro.p4runtime.aio_client import AioP4RuntimeClient
from repro.p4runtime.api import DeviceService, TableWrite
from repro.p4runtime.farm import DeviceFarm
from repro.p4runtime.server import P4RuntimeServer

FAST = RetryPolicy(
    connect_timeout=2.0,
    call_timeout=5.0,
    max_reconnect_attempts=100,
    base_delay=0.01,
    max_delay=0.1,
)

SCHEMA = simple_schema(
    "net", {"PortCfg": {"port": "integer", "out_port": "integer"}}
)

P4 = """
header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
struct headers_t { eth_t eth; }
struct meta_t { bit<1> pad; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
         inout standard_metadata_t std) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control Ing(inout headers_t hdr, inout meta_t m,
            inout standard_metadata_t std) {
    action forward(bit<16> port) { std.egress_spec = port; }
    action drop() { mark_to_drop(); }
    table patch {
        key = { std.ingress_port : exact; }
        actions = { forward; drop; }
        default_action = drop();
    }
    apply { patch.apply(); }
}
"""

RULES = "Patch(p as bit<16>, PatchActionForward{o as bit<16>}) :- PortCfg(_, p, o)."


def free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def wait_for(predicate, timeout=10.0, what="condition"):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {what}")


def entry(port, out_port):
    return TableEntry([FieldMatch.exact(port)], "forward", [out_port])


def add_port(db, port, out_port):
    db.transact(
        [
            {
                "op": "insert",
                "table": "PortCfg",
                "row": {"port": port, "out_port": out_port},
            }
        ]
    )


def set_out_port(db, port, out_port):
    db.transact(
        [
            {
                "op": "update",
                "table": "PortCfg",
                "where": [["port", "==", port]],
                "row": {"out_port": out_port},
            }
        ]
    )


def del_port(db, port):
    db.transact(
        [
            {
                "op": "delete",
                "table": "PortCfg",
                "where": [["port", "==", port]],
            }
        ]
    )


def table_state(sim) -> str:
    """Canonical dump of a simulator's ``patch`` table."""
    service = DeviceService(sim)
    entries = []
    for e in service.read_table("patch"):
        entries.append(
            {
                "matches": [list(m.key()) for m in e.matches],
                "action": e.action,
                "params": list(e.action_params),
                "priority": e.priority,
            }
        )
    entries.sort(key=lambda e: json.dumps(e, sort_keys=True, default=str))
    return json.dumps(entries, sort_keys=True, default=str)


class _SilentPeer:
    """Accepts TCP connections and never replies (nor sends).

    The pathological-but-real peer the aio transport must survive:
    per-call deadlines, heartbeat detection, and write-buffer
    watermarks are all exercised against it.
    """

    def __init__(self):
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(64)
        self.address = self.listener.getsockname()[:2]
        self.conns = []
        self.alive = True
        self._thread = threading.Thread(target=self._accept, daemon=True)
        self._thread.start()

    def _accept(self):
        while self.alive:
            try:
                sock, _ = self.listener.accept()
            except OSError:
                return
            self.conns.append(sock)

    def stop(self):
        self.alive = False
        try:
            self.listener.close()
        except OSError:
            pass
        for sock in self.conns:
            try:
                sock.close()
            except OSError:
                pass


# ---------------------------------------------------------------------------
# Reactor.
# ---------------------------------------------------------------------------


class TestReactor:
    def test_submit_runs_on_loop_thread(self):
        reactor = Reactor("t-submit").start()
        try:
            box = {}
            done = threading.Event()

            def probe():
                box["in_loop"] = reactor.in_loop()
                done.set()

            assert reactor.submit(probe)
            assert done.wait(5.0)
            assert box["in_loop"] is True
            assert not reactor.in_loop()  # the test thread is not the loop
        finally:
            reactor.stop()

    def test_call_later_fires_and_cancel_prevents(self):
        reactor = Reactor("t-timer").start()
        try:
            fired = threading.Event()
            never = threading.Event()
            started = time.monotonic()
            reactor.call_later(0.05, fired.set)
            doomed = reactor.call_later(0.05, never.set)
            doomed.cancel()
            assert fired.wait(5.0)
            assert time.monotonic() - started >= 0.04
            time.sleep(0.1)
            assert not never.is_set()
        finally:
            reactor.stop()

    def test_submit_after_stop_returns_false(self):
        reactor = Reactor("t-stopped").start()
        reactor.stop()
        assert reactor.submit(lambda: None) is False
        timer = reactor.call_later(0.0, lambda: None)
        assert timer.cancelled

    def test_callback_error_does_not_kill_loop(self):
        reactor = Reactor("t-survive").start()
        try:
            boom = RuntimeError("injected callback failure")

            def bad():
                raise boom

            reactor.submit(bad)
            survived = threading.Event()
            reactor.submit(survived.set)
            assert survived.wait(5.0)
            assert reactor.last_callback_error is boom
        finally:
            reactor.stop()


# ---------------------------------------------------------------------------
# AioConnection.
# ---------------------------------------------------------------------------


def sim_and_server(port=0):
    project = nerpa_build(SCHEMA, RULES, P4)
    sim = project.new_simulator(n_ports=16)
    server = P4RuntimeServer(sim, port=port).start()
    return sim, server, server.address[1]


class TestAioConnection:
    def test_blocking_call_round_trip(self):
        reactor = Reactor("t-call").start()
        sim, server, port = sim_and_server()
        conn = AioConnection("127.0.0.1", port, reactor, policy=FAST)
        try:
            assert conn.wait_connected(5.0)
            assert conn.call("echo", ["hello"], retryable=True) == ["hello"]
            health = conn.health()
            assert health["state"] == CONNECTED
            assert health["send_buffer_bytes"] == 0
        finally:
            conn.close()
            server.stop()
            reactor.stop()

    def test_call_async_resolves_on_loop_thread(self):
        reactor = Reactor("t-async").start()
        sim, server, port = sim_and_server()
        conn = AioConnection("127.0.0.1", port, reactor, policy=FAST)
        try:
            assert conn.wait_connected(5.0)
            box = {}
            done = threading.Event()

            def cb(result, error):
                box["result"] = result
                box["error"] = error
                box["in_loop"] = reactor.in_loop()
                done.set()

            conn.call_async("echo", [1, 2], cb)
            assert done.wait(5.0)
            assert box["error"] is None
            assert box["result"] == [1, 2]
            assert box["in_loop"] is True
        finally:
            conn.close()
            server.stop()
            reactor.stop()

    def test_per_call_deadline_fires_without_breaking_connection(self):
        peer = _SilentPeer()
        reactor = Reactor("t-deadline").start()
        conn = AioConnection(
            "127.0.0.1", peer.address[1], reactor, policy=FAST
        )
        try:
            assert conn.wait_connected(5.0)
            with pytest.raises(ProtocolError, match="timeout"):
                conn.call("echo", ["never answered"], timeout=0.2)
            # A per-call deadline is the caller's problem, not a
            # transport fault: the connection stays usable.
            assert conn.state == CONNECTED
        finally:
            conn.close()
            reactor.stop()
            peer.stop()

    def test_call_fails_fast_while_reconnecting(self):
        reactor = Reactor("t-fastfail").start()
        port = free_port()  # nothing listening
        conn = AioConnection(
            "127.0.0.1",
            port,
            reactor,
            policy=RetryPolicy(
                connect_timeout=0.5,
                call_timeout=1.0,
                max_reconnect_attempts=2,
                base_delay=0.01,
                max_delay=0.02,
            ),
        )
        try:
            wait_for(
                lambda: conn.state == BROKEN, what="retries to exhaust"
            )
            started = time.monotonic()
            with pytest.raises(ConnectionLostError):
                conn.call("echo", ["no peer"])
            assert time.monotonic() - started < 0.5  # no timeout burned
            assert conn.retry_count >= 1
        finally:
            conn.close()
            reactor.stop()

    @pytest.mark.slow
    def test_reconnects_after_server_restart(self):
        reactor = Reactor("t-reconnect").start()
        port = free_port()
        sim, server, _ = sim_and_server(port=port)
        conn = AioConnection("127.0.0.1", port, reactor, policy=FAST)
        hook_ran = threading.Event()
        conn.on_reconnect(hook_ran.set)
        try:
            assert conn.wait_connected(5.0)
            server.stop()
            wait_for(
                lambda: conn.state == RETRYING, what="loss detection"
            )
            server = P4RuntimeServer(sim, port=port).start()
            wait_for(
                lambda: conn.state == CONNECTED and conn.reconnects >= 1,
                what="reconnect",
            )
            assert hook_ran.wait(5.0)
            assert conn.call("echo", ["back"], retryable=True) == ["back"]
            assert RETRYING in conn.transitions
        finally:
            conn.close()
            server.stop()
            reactor.stop()

    @pytest.mark.slow
    def test_heartbeat_detects_unresponsive_peer(self):
        peer = _SilentPeer()
        reactor = Reactor("t-hb").start()
        conn = AioConnection(
            "127.0.0.1",
            peer.address[1],
            reactor,
            policy=RetryPolicy(
                connect_timeout=1.0,
                call_timeout=5.0,
                heartbeat_interval=0.1,
                max_reconnect_attempts=100,
                base_delay=0.01,
                max_delay=0.05,
            ),
        )
        try:
            assert conn.wait_connected(5.0)
            # The peer accepts but never answers the heartbeat echo —
            # only the probe can notice; no caller is blocked.
            wait_for(
                lambda: conn.retry_count >= 1,
                what="heartbeat to detect the dead peer",
            )
            assert RETRYING in conn.transitions
        finally:
            conn.close()
            reactor.stop()
            peer.stop()

    def test_watermark_blocks_writable_and_teardown_fires_drain(self):
        peer = _SilentPeer()
        reactor = Reactor("t-watermark").start()
        conn = AioConnection(
            "127.0.0.1",
            peer.address[1],
            reactor,
            policy=FAST,
            high_watermark=1024,
            low_watermark=256,
        )
        try:
            assert conn.wait_connected(5.0)
            failures = []
            acked = threading.Event()

            def cb(result, error):
                failures.append(error)
                acked.set()

            # Far more than the kernel will buffer for a peer that
            # never reads: the outbound buffer must cross the high
            # watermark and stay there.
            conn.call_async("echo", ["x" * (4 * 1024 * 1024)], cb)
            wait_for(lambda: not conn.writable, what="watermark")
            assert conn.send_buffer_bytes > 1024

            drained = threading.Event()
            conn.on_drain(drained.set)
            time.sleep(0.05)
            assert not drained.is_set()  # genuinely parked

            # The no-wedge guarantee: tearing down the transport fires
            # parked drain callbacks (buffer is gone), so flow-blocked
            # producers fail fast instead of hanging forever.
            conn.close()
            assert drained.wait(5.0)
            assert acked.wait(5.0)
            assert isinstance(failures[0], ConnectionLostError)
        finally:
            conn.close()
            reactor.stop()
            peer.stop()


# ---------------------------------------------------------------------------
# DeviceChannel.
# ---------------------------------------------------------------------------


class _Op:
    """Distinct (non-mergeable) queue item."""

    def __init__(self, n):
        self.n = n


class TestDeviceChannel:
    def test_fifo_with_at_most_one_in_flight(self):
        plane = FanoutPlane(max_blocking_workers=4)
        order = []
        concurrent = []
        active = [0]
        lock = threading.Lock()

        def runner(channel, item, done):
            def work():
                with lock:
                    active[0] += 1
                    concurrent.append(active[0])
                time.sleep(0.002)
                order.append(item.n)
                with lock:
                    active[0] -= 1
                done(None)

            plane.run_blocking(work)

        try:
            channel = plane.channel(None, runner, name="dev")
            channel.start()
            for n in range(20):
                channel.queue.put(_Op(n))
            channel.queue.join(time.monotonic() + 10.0)
            assert order == list(range(20))
            assert max(concurrent) == 1  # FIFO's mechanism, verified
            assert plane.inflight == 0
            wait_for(lambda: channel.state == IDLE, what="idle state")
        finally:
            plane.stop()

    def test_runner_error_deferred_and_channel_continues(self):
        errors = []
        plane = FanoutPlane(max_blocking_workers=2, on_error=errors.append)
        seen = []

        def runner(channel, item, done):
            if item.n == 0:
                raise RuntimeError("injected runner failure")
            seen.append(item.n)
            done(None)

        try:
            channel = plane.channel(None, runner, name="dev")
            channel.start()
            channel.queue.put(_Op(0))
            channel.queue.put(_Op(1))
            channel.queue.join(time.monotonic() + 10.0)
            assert seen == [1]
            assert len(errors) == 1
            assert "injected" in str(errors[0])
        finally:
            plane.stop()

    def test_completion_is_idempotent(self):
        plane = FanoutPlane(max_blocking_workers=2)
        runs = []

        def runner(channel, item, done):
            runs.append(item.n)
            done(None)
            done(RuntimeError("second call must be ignored"))

        try:
            channel = plane.channel(None, runner, name="dev")
            channel.start()
            channel.queue.put(_Op(0))
            channel.queue.put(_Op(1))
            channel.queue.join(time.monotonic() + 10.0)
            assert runs == [0, 1]
            assert plane.inflight == 0
        finally:
            plane.stop()


# ---------------------------------------------------------------------------
# The controller on the aio plane.
# ---------------------------------------------------------------------------


def build():
    project = nerpa_build(SCHEMA, RULES, P4)
    db = Database(project.schema)
    switch = project.new_simulator(n_ports=16)
    return project, db, switch


class TestControllerAioPlane:
    def test_unknown_plane_rejected(self):
        project, db, switch = build()
        with pytest.raises(ReproError, match="unknown apply plane"):
            NerpaController(project, db, [switch], apply_plane="fibers")

    def test_aio_plane_metrics_and_quiescence(self):
        project, db, switch = build()
        controller = NerpaController(project, db, [switch]).start()
        try:
            for port in range(4):
                add_port(db, port, port + 1)
            controller.drain()
            assert len(switch.table("patch")) == 4
            fanout = controller.metrics()["pipeline"]["fanout"]
            assert fanout["plane"] == "aio"
            assert fanout["inflight"] == 0
            assert fanout["channel_states"] == {IDLE: 1}
        finally:
            controller.stop()

    def test_threads_plane_still_available(self):
        project, db, switch = build()
        controller = NerpaController(
            project, db, [switch], apply_plane="threads"
        ).start()
        try:
            for port in range(4):
                add_port(db, port, port + 1)
            controller.drain()
            assert len(switch.table("patch")) == 4
            assert "fanout" not in controller.metrics()["pipeline"]
        finally:
            controller.stop()

    def test_resync_supersedes_queued_batches_on_aio_plane(self):
        project, db, switch = build()
        slow_sim = project.new_simulator(n_ports=16)
        slow = _SlowService(slow_sim, delay=0.15)
        controller = NerpaController(project, db, [slow]).start()
        try:
            controller.drain()
            # Burst behind the slow device, then resync: the full sync
            # is a barrier task superseding the queued batches.
            for port in range(6):
                add_port(db, port, port + 1)
            controller.resync_device(0)
            controller.drain()
            assert len(slow_sim.table("patch")) == 6
            assert controller.device_resyncs >= 1
        finally:
            controller.stop()


# ---------------------------------------------------------------------------
# Differential: threads plane vs aio plane.
# ---------------------------------------------------------------------------


class _RecordingService(DeviceService):
    """Device that records the order writes arrive in."""

    def __init__(self, sim):
        super().__init__(sim)
        self.log = []

    def apply_batch(self, updates, mcast=None):
        self.log.append(
            [(u.kind, tuple(u.entry.action_params)) for u in updates]
        )
        return super().apply_batch(updates, mcast)


class _SlowService(DeviceService):
    def __init__(self, sim, delay):
        super().__init__(sim)
        self.delay = delay

    def apply_batch(self, updates, mcast=None):
        time.sleep(self.delay)
        return super().apply_batch(updates, mcast)


class _FlakyService(DeviceService):
    """Raises transport errors until told to heal."""

    def __init__(self, sim):
        super().__init__(sim)
        self.failing = True
        self.failures = 0

    def apply_batch(self, updates, mcast=None):
        if self.failing:
            self.failures += 1
            raise OSError("injected device transport failure")
        return super().apply_batch(updates, mcast)


def churn(db):
    for port in range(8):
        add_port(db, port, port + 1)
    for port in range(0, 8, 2):
        set_out_port(db, port, port + 10)
    del_port(db, 3)
    del_port(db, 5)
    set_out_port(db, 1, 42)


class TestDifferentialPlanes:
    def run_uncoalesced(self, plane):
        project = nerpa_build(SCHEMA, RULES, P4)
        db = Database(project.schema)
        sims = [project.new_simulator(n_ports=16) for _ in range(2)]
        services = [_RecordingService(sim) for sim in sims]
        controller = NerpaController(
            project, db, services, coalesce=False, apply_plane=plane
        ).start()
        try:
            churn(db)
            controller.drain()
        finally:
            controller.stop()
        return (
            [svc.log for svc in services],
            [table_state(sim) for sim in sims],
        )

    def test_same_write_order_and_final_tables(self):
        """With coalescing off every engine transaction is its own wire
        write, so the two planes must agree *batch for batch* — not
        just on the final tables."""
        logs_threads, tables_threads = self.run_uncoalesced("threads")
        logs_aio, tables_aio = self.run_uncoalesced("aio")
        assert logs_aio == logs_threads
        assert tables_aio == tables_threads
        # And the order is non-trivial: writes actually happened.
        assert sum(len(log) for log in logs_aio) > 0

    def run_quarantine(self, plane):
        project = nerpa_build(SCHEMA, RULES, P4)
        db = Database(project.schema)
        healthy_sim = project.new_simulator(n_ports=16)
        flaky_sim = project.new_simulator(n_ports=16)
        flaky = _FlakyService(flaky_sim)
        controller = NerpaController(
            project,
            db,
            [healthy_sim, flaky],
            breaker_threshold=2,
            coalesce=False,
            apply_plane=plane,
        ).start()
        try:
            flaky_dev = controller.devices[1]
            for n in range(1, 7):
                add_port(db, n, n + 1)
                # Pace the churn so each failed batch is its own
                # breaker strike on both planes.
                wait_for(
                    lambda n=n: flaky_dev.quarantined
                    or flaky_dev.consecutive_failures >= min(n, 2)
                    or flaky_dev.syncs_missed >= n,
                    what="write attempt to resolve",
                )
            controller.drain()
            quarantined_during = flaky_dev.quarantined
            missed = flaky_dev.syncs_missed
            # Heal the device, then recover it through the resync
            # (barrier + supersede) path.
            flaky.failing = False
            controller.resync_device(1)
            controller.drain()
            return {
                "quarantined_during": quarantined_during,
                "missed_some": missed > 0,
                "recovered": not flaky_dev.quarantined,
                "healthy_table": table_state(healthy_sim),
                "flaky_table": table_state(flaky_sim),
            }
        finally:
            controller.stop()

    @pytest.mark.slow
    def test_quarantine_and_recovery_identical_across_planes(self):
        threads = self.run_quarantine("threads")
        aio = self.run_quarantine("aio")
        assert aio == threads
        assert aio["quarantined_during"] is True
        assert aio["recovered"] is True
        # After recovery both devices converged to the same state.
        assert aio["flaky_table"] == aio["healthy_table"]


# ---------------------------------------------------------------------------
# DeviceFarm + AioP4RuntimeClient.
# ---------------------------------------------------------------------------


class TestDeviceFarm:
    def test_bind_routes_calls_to_the_hinted_device(self):
        reactor = Reactor("t-farm").start()
        farm = DeviceFarm(3).start()
        try:
            host, port = farm.address
            client = AioP4RuntimeClient(
                host, port, reactor, policy=FAST, device_hint=2
            )
            assert client.conn.wait_connected(5.0)
            applied = client.apply_batch(
                [TableWrite.insert("patch", entry(1, 5))],
                update_ids=["epoch-1"],
            )
            assert applied == 1
            assert farm.devices[2].updates_applied == 1
            assert farm.devices[0].updates_applied == 0
            assert farm.devices[2].epoch == "epoch-1"
            assert client.get_config_epoch() == "epoch-1"
            entries = client.read_table("patch")
            assert len(entries) == 1
            assert list(entries[0].entry.action_params) == [5]
            client.set_multicast_group(7, [1, 2])
            assert farm.devices[2].mcast[7] == [1, 2]
            client.delete_multicast_group(7)
            assert 7 not in farm.devices[2].mcast
            client.close()
        finally:
            farm.stop()
            reactor.stop()

    def test_seq_ranges_verify_fifo_at_the_receiver(self):
        reactor = Reactor("t-seq").start()
        farm = DeviceFarm(1).start()
        try:
            host, port = farm.address
            client = AioP4RuntimeClient(
                host, port, reactor, policy=FAST, device_hint=0
            )
            assert client.conn.wait_connected(5.0)

            def send_seq(seq):
                done = threading.Event()
                client.apply_batch_async(
                    [], callback=lambda *_: done.set(), seq=seq
                )
                assert done.wait(5.0)

            send_seq((1, 3))
            send_seq((4, 4))
            assert farm.total_fifo_violations() == 0
            send_seq((7, 9))  # supersede skipped 5-6: legal
            assert farm.total_fifo_violations() == 0
            send_seq((9, 10))  # rewinds into an acked range: violation
            assert farm.total_fifo_violations() == 1
            assert farm.devices[0].last_seq == 10
            client.close()
        finally:
            farm.stop()
            reactor.stop()

    def test_slow_device_ack_delay_does_not_block_the_farm(self):
        reactor = Reactor("t-slowfarm").start()
        farm = DeviceFarm(2).start()
        farm.set_ack_delay(0, 0.4)
        try:
            host, port = farm.address
            slow = AioP4RuntimeClient(
                host, port, reactor, policy=FAST, device_hint=0
            )
            fast = AioP4RuntimeClient(
                host, port, reactor, policy=FAST, device_hint=1
            )
            assert slow.conn.wait_connected(5.0)
            assert fast.conn.wait_connected(5.0)
            slow_done = threading.Event()
            started = time.monotonic()
            slow.apply_batch_async(
                [TableWrite.insert("patch", entry(1, 5))],
                callback=lambda *_: slow_done.set(),
            )
            # A call to the healthy device completes while the slow
            # device's ack is still parked on a farm timer.
            fast.apply_batch([TableWrite.insert("patch", entry(1, 6))])
            fast_elapsed = time.monotonic() - started
            assert fast_elapsed < 0.3
            assert slow_done.wait(5.0)
            assert time.monotonic() - started >= 0.35
            assert farm.devices[0].updates_applied == 1
            slow.close()
            fast.close()
        finally:
            farm.stop()
            reactor.stop()


class TestControllerAgainstFarm:
    """The real thing end to end: a controller whose stage 3 drives
    reactor-backed clients against a reactor-backed fleet."""

    @pytest.mark.slow
    def test_churn_converges_with_fifo_verified_at_the_devices(self):
        n_devices = 8
        project = nerpa_build(SCHEMA, RULES, P4)
        db = Database(project.schema)
        reactor = Reactor("t-ctrl-farm").start()
        farm = DeviceFarm(n_devices).start()
        host, port = farm.address
        clients = [
            AioP4RuntimeClient(
                host, port, reactor, policy=FAST, device_hint=i
            )
            for i in range(n_devices)
        ]
        controller = NerpaController(
            project, db, clients, reactor=reactor
        ).start()
        try:
            churn(db)
            controller.drain()
            states = {
                json.dumps(d.table_snapshot(), sort_keys=True)
                for d in farm.devices
            }
            assert len(states) == 1  # every device saw the same world
            assert farm.devices[0].tables["patch"]  # and it is non-empty
            assert farm.total_fifo_violations() == 0
            assert farm.total_batches() >= n_devices
            fanout = controller.metrics()["pipeline"]["fanout"]
            assert fanout["plane"] == "aio"
            assert fanout["inflight"] == 0
            assert set(fanout["send_buffer_bytes"]) == {
                f"device-{i}" for i in range(n_devices)
            }
        finally:
            controller.stop()
            for client in clients:
                client.close()
            farm.stop()
            reactor.stop()
