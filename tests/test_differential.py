"""Differential tests across independent implementations.

Two executors exist for a compiled pipeline: the behavioral simulator
(bit-level packets) and the OpenFlow lowering (field maps through flow
tables).  For the table-lookup core they must agree — a classic
differential-testing setup that guards both.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.p4.ir import compile_p4
from repro.p4.openflow import OFSwitch, compile_to_openflow, instantiate_entries
from repro.p4.simulator import Simulator
from repro.p4.tables import FieldMatch, TableEntry

# One-table pipeline with a ternary+exact key: the hardest lookup mode.
PIPELINE_P4 = """
header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
struct headers_t { eth_t eth; }
struct meta_t { bit<8> cls; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
         inout standard_metadata_t std) {
    state start { pkt.extract(hdr.eth); transition accept; }
}

control Ing(inout headers_t hdr, inout meta_t m,
            inout standard_metadata_t std) {
    action classify(bit<8> cls) { m.cls = cls; }
    action drop() { mark_to_drop(); }
    table acl {
        key = {
            std.ingress_port : exact;
            hdr.eth.ethertype : ternary;
        }
        actions = { classify; drop; }
        default_action = drop();
    }
    apply { acl.apply(); }
}
"""


def random_entries(rng, count):
    entries = []
    used = set()
    for _ in range(count):
        port = rng.randrange(4)
        value = rng.randrange(1 << 16)
        mask = rng.choice([0xFFFF, 0xFF00, 0x00FF, 0xF000, 0x0000])
        priority = rng.randrange(1, 20)
        key = (port, value & mask, mask, priority)
        if key in used:
            continue
        used.add(key)
        entries.append(
            TableEntry(
                [FieldMatch.exact(port), FieldMatch.ternary(value & mask, mask)],
                "classify",
                [rng.randrange(256)],
                priority=priority,
            )
        )
    return entries


class TestSimulatorVsOpenFlow:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_lookup_agreement(self, seed):
        rng = random.Random(seed)
        pipeline = compile_p4(PIPELINE_P4)
        sim = Simulator(pipeline, n_ports=4)
        entries = random_entries(rng, 12)
        for entry in entries:
            sim.table("acl").insert(entry)

        program = compile_to_openflow(pipeline)
        switch = OFSwitch(instantiate_entries(program, sim.tables))

        for _ in range(40):
            port = rng.randrange(4)
            ethertype = rng.randrange(1 << 16)
            action, params, hit = sim.table("acl").lookup([port, ethertype])
            trace = switch.process(
                {"std.ingress_port": port, "hdr.eth.ethertype": ethertype}
            )
            assert trace, "OF switch must always apply some action"
            of_action, of_params = trace[0]
            assert of_action == action
            assert of_params == tuple(params)

    def test_priority_tie_break_matches(self):
        """Same-priority overlapping entries: both executors must use a
        deterministic and identical order (insertion order here)."""
        pipeline = compile_p4(PIPELINE_P4)
        sim = Simulator(pipeline, n_ports=4)
        # Both entries match ethertype 0x1234 at the same priority.
        first = TableEntry(
            [FieldMatch.exact(0), FieldMatch.ternary(0x0034, 0x00FF)],
            "classify",
            [1],
            priority=5,
        )
        second = TableEntry(
            [FieldMatch.exact(0), FieldMatch.ternary(0x1200, 0xFF00)],
            "classify",
            [2],
            priority=5,
        )
        sim.table("acl").insert(first)
        sim.table("acl").insert(second)
        action, params, _ = sim.table("acl").lookup([0, 0x1234])

        program = compile_to_openflow(pipeline)
        switch = OFSwitch(instantiate_entries(program, sim.tables))
        trace = switch.process(
            {"std.ingress_port": 0, "hdr.eth.ethertype": 0x1234}
        )
        assert trace[0] == (action, tuple(params))


class TestMultiDevice:
    def test_controller_programs_all_devices_identically(self):
        from repro.apps.snvs import build_snvs
        from repro.core.controller import NerpaController
        from repro.mgmt.database import Database

        project = build_snvs()
        db = Database(project.schema)
        switches = [project.new_simulator(n_ports=8) for _ in range(3)]
        controller = NerpaController(project, db, switches).start()
        db.transact(
            [
                {"op": "insert", "table": "Vlan",
                 "row": {"vid": 7, "description": ""}},
                {"op": "insert", "table": "Port",
                 "row": {"name": "p0", "port_num": 0,
                         "vlan_mode": "access", "tag": 7}},
            ]
        )
        controller.drain()
        for switch in switches:
            assert len(switch.table("in_vlan")) == 1
            assert switch.multicast_groups[7] == [0]
        db.transact([{"op": "delete", "table": "Port", "where": []}])
        controller.drain()
        for switch in switches:
            assert len(switch.table("in_vlan")) == 0
        controller.stop()


class TestPersistedRestart:
    def test_restore_then_reconcile(self, tmp_path):
        """The full robustness story: database persisted, controller
        and database both restart, device keeps running — the system
        converges without duplicate writes or lost entries."""
        from repro.apps.snvs import build_snvs
        from repro.core.controller import NerpaController
        from repro.mgmt.database import Database
        from repro.mgmt.persist import Persister, restore

        project = build_snvs()
        db = Database(project.schema)
        persister = Persister(db, str(tmp_path))
        switch = project.new_simulator(n_ports=8)
        controller = NerpaController(project, db, [switch]).start()
        db.transact(
            [
                {"op": "insert", "table": "Vlan",
                 "row": {"vid": 5, "description": ""}},
                {"op": "insert", "table": "Port",
                 "row": {"name": "p1", "port_num": 1,
                         "vlan_mode": "access", "tag": 5}},
            ]
        )
        controller.drain()
        entries_before = len(switch.table("in_vlan"))
        controller.stop()
        persister.snapshot()
        persister.close()

        db2 = restore(str(tmp_path))
        assert db2.count("Port") == 1
        controller2 = NerpaController(project, db2, [switch])
        controller2.start(reconcile=True)
        assert len(switch.table("in_vlan")) == entries_before
        assert controller2.entries_written == 0  # nothing was stale


# ---------------------------------------------------------------------------
# Incremental engine vs full recompute: property-based fixpoint harness.
# ---------------------------------------------------------------------------

from hypothesis import HealthCheck  # noqa: E402

from repro.baselines.full_recompute import FullRecomputeController  # noqa: E402
from repro.dlog.engine import compile_program  # noqa: E402


def _join_program(r_arity: int, s_arity: int, jr: int, js: int) -> str:
    """A randomized two-relation schema: ``J`` joins R and S on one
    column position, ``OnlyR`` is R anti-joined against S."""
    r_cols = ", ".join(f"r{i}: bigint" for i in range(r_arity))
    s_cols = ", ".join(f"s{i}: bigint" for i in range(s_arity))
    r_vars = [f"x{i}" for i in range(r_arity)]
    s_vars = [f"y{i}" for i in range(s_arity)]
    s_vars[js] = r_vars[jr]  # the shared join variable
    out_vars = r_vars + [v for i, v in enumerate(s_vars) if i != js]
    j_cols = ", ".join(f"c{i}: bigint" for i in range(len(out_vars)))
    neg_args = ["_"] * s_arity
    neg_args[js] = r_vars[jr]
    return f"""
input relation R({r_cols})
input relation S({s_cols})
output relation J({j_cols})
output relation OnlyR({r_cols})
J({", ".join(out_vars)}) :- R({", ".join(r_vars)}), S({", ".join(s_vars)}).
OnlyR({", ".join(r_vars)}) :- R({", ".join(r_vars)}), not S({", ".join(neg_args)}).
"""


def _join_derive(jr: int, js: int):
    """The same semantics, computed from scratch over plain sets."""

    def derive(config):
        rs = config.get("R", set())
        ss = config.get("S", set())
        out = set()
        for r in rs:
            matched = False
            for s in ss:
                if s[js] == r[jr]:
                    matched = True
                    out.add(
                        ("J",)
                        + tuple(r)
                        + tuple(v for i, v in enumerate(s) if i != js)
                    )
            if not matched:
                out.add(("OnlyR",) + tuple(r))
        return out

    return derive


@st.composite
def _join_scenarios(draw):
    r_arity = draw(st.integers(1, 3))
    s_arity = draw(st.integers(1, 3))
    jr = draw(st.integers(0, r_arity - 1))
    js = draw(st.integers(0, s_arity - 1))

    def rows(arity):
        return st.lists(
            st.tuples(*[st.integers(0, 3)] * arity), max_size=5
        )

    batches = draw(
        st.lists(
            st.fixed_dictionaries(
                {
                    "R+": rows(r_arity),
                    "R-": rows(r_arity),
                    "S+": rows(s_arity),
                    "S-": rows(s_arity),
                }
            ),
            min_size=1,
            max_size=5,
        )
    )
    return r_arity, s_arity, jr, js, batches


REACH_PROGRAM = """
input relation Edge(a: bigint, b: bigint)
output relation Reach(x: bigint, y: bigint)
Reach(x, y) :- Edge(x, y).
Reach(x, z) :- Reach(x, y), Edge(y, z).
"""


def _closure_derive(config):
    edges = config.get("Edge", set())
    reach = set(edges)
    while True:
        new = {
            (x, z)
            for (x, y) in reach
            for (y2, z) in edges
            if y == y2
        } - reach
        if not new:
            break
        reach |= new
    return reach


class TestEngineVsFullRecompute:
    """Property harness: the incremental engine against the
    recompute-everything baseline (`repro.baselines.full_recompute`),
    over randomized relation schemas and insert/delete delta sequences,
    asserting identical fixpoints after every batch."""

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(_join_scenarios())
    def test_join_and_negation_fixpoints_agree(self, scenario):
        r_arity, s_arity, jr, js, batches = scenario
        runtime = compile_program(_join_program(r_arity, s_arity, jr, js)).start()
        baseline = FullRecomputeController(_join_derive(jr, js))
        for batch in batches:
            changes = {
                "inserts": {"R": batch["R+"], "S": batch["S+"]},
                "deletes": {"R": batch["R-"], "S": batch["S-"]},
            }
            runtime.transaction(**changes)
            baseline.apply_change(**changes)
            got = {("J",) + row for row in runtime.dump("J")} | {
                ("OnlyR",) + row for row in runtime.dump("OnlyR")
            }
            assert got == baseline.installed

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.lists(
            st.fixed_dictionaries(
                {
                    "Edge+": st.lists(
                        st.tuples(st.integers(0, 4), st.integers(0, 4)),
                        max_size=6,
                    ),
                    "Edge-": st.lists(
                        st.tuples(st.integers(0, 4), st.integers(0, 4)),
                        max_size=6,
                    ),
                }
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_recursive_reachability_fixpoints_agree(self, batches):
        """DRed (delete–rederive) vs a from-scratch transitive closure:
        cycles and deletions inside cycles are where incremental
        maintenance historically goes wrong."""
        runtime = compile_program(REACH_PROGRAM).start()
        baseline = FullRecomputeController(_closure_derive)
        for batch in batches:
            changes = {
                "inserts": {"Edge": batch["Edge+"]},
                "deletes": {"Edge": batch["Edge-"]},
            }
            runtime.transaction(**changes)
            baseline.apply_change(**changes)
            assert runtime.dump("Reach") == baseline.installed

    def test_duplicate_churn_converges_identically(self):
        """Deterministic regression: duplicate inserts, deletes of
        absent rows, and insert+delete of the same row in one batch are
        ignored identically by both implementations."""
        runtime = compile_program(_join_program(2, 2, 0, 1)).start()
        baseline = FullRecomputeController(_join_derive(0, 1))
        batches = [
            {"inserts": {"R": [(1, 2), (1, 2)], "S": [(9, 1)]},
             "deletes": {"R": [(7, 7)], "S": []}},
            {"inserts": {"R": [(3, 4)], "S": [(8, 3)]},
             "deletes": {"R": [(3, 4)], "S": []}},
            {"inserts": {"R": [], "S": []},
             "deletes": {"R": [(1, 2)], "S": [(9, 1)]}},
        ]
        for changes in batches:
            runtime.transaction(**changes)
            baseline.apply_change(**changes)
            got = {("J",) + row for row in runtime.dump("J")} | {
                ("OnlyR",) + row for row in runtime.dump("OnlyR")
            }
            assert got == baseline.installed

# ---------------------------------------------------------------------------
# Sharding oracle: ShardedRuntime(shards=n) vs the single-shard engine
# vs full recompute.
# ---------------------------------------------------------------------------

from repro.dlog.shard import ShardedRuntime  # noqa: E402


def _delta_bytes(result):
    """Canonical serialization of a TxnResult's deltas — the comparison
    is byte-identical, not merely set-equal, so weight mistakes
    (double-emitted replicated rows, missed cross-shard rederivations)
    cannot hide behind set semantics."""
    return repr(
        sorted(
            (rel, sorted(delta.data.items()))
            for rel, delta in result.deltas.items()
        )
    )


def _batch_changes(batch):
    return {
        "inserts": {"R": batch["R+"], "S": batch["S+"]},
        "deletes": {"R": batch["R-"], "S": batch["S-"]},
    }


class TestShardingOracle:
    """Shard count must be unobservable: for every generated program and
    transaction sequence, `ShardedRuntime(shards=n)` emits byte-identical
    output deltas to the single-shard engine and converges to the same
    fixpoint as the recompute-everything baseline."""

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(scenario=_join_scenarios(), shards=st.sampled_from([1, 2, 4]))
    def test_join_negation_deltas_byte_identical(self, scenario, shards):
        r_arity, s_arity, jr, js, batches = scenario
        program = compile_program(_join_program(r_arity, s_arity, jr, js))
        single = program.start()
        sharded = ShardedRuntime(program, shards=shards, workers="inline")
        baseline = FullRecomputeController(_join_derive(jr, js))
        try:
            assert _delta_bytes(single.initial_result) == _delta_bytes(
                sharded.initial_result
            )
            for batch in batches:
                changes = _batch_changes(batch)
                expect = single.transaction(**changes)
                got = sharded.transaction(**changes)
                baseline.apply_change(**changes)
                assert _delta_bytes(expect) == _delta_bytes(got)
                assert expect.warnings == got.warnings
                merged = {("J",) + row for row in sharded.dump("J")} | {
                    ("OnlyR",) + row for row in sharded.dump("OnlyR")
                }
                assert merged == baseline.installed
        finally:
            sharded.close()

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        batches=st.lists(
            st.fixed_dictionaries(
                {
                    "Edge+": st.lists(
                        st.tuples(st.integers(0, 4), st.integers(0, 4)),
                        max_size=6,
                    ),
                    "Edge-": st.lists(
                        st.tuples(st.integers(0, 4), st.integers(0, 4)),
                        max_size=6,
                    ),
                }
            ),
            min_size=1,
            max_size=5,
        ),
        shards=st.sampled_from([1, 2, 4]),
    )
    def test_recursive_closure_deltas_byte_identical(self, batches, shards):
        """Recursion degrades to broadcast (transitive closure is not
        key-closed) — the fallback must still be delta-exact, with the
        cross-shard reference counts collapsing the N replicas."""
        program = compile_program(REACH_PROGRAM)
        single = program.start()
        sharded = ShardedRuntime(program, shards=shards, workers="inline")
        baseline = FullRecomputeController(_closure_derive)
        try:
            for batch in batches:
                changes = {
                    "inserts": {"Edge": batch["Edge+"]},
                    "deletes": {"Edge": batch["Edge-"]},
                }
                expect = single.transaction(**changes)
                got = sharded.transaction(**changes)
                baseline.apply_change(**changes)
                assert _delta_bytes(expect) == _delta_bytes(got)
                assert sharded.dump("Reach") == baseline.installed
        finally:
            sharded.close()

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(scenario=_join_scenarios(), shards=st.sampled_from([2, 4]))
    def test_checkpoint_restore_mid_sequence(self, scenario, shards):
        """Checkpoint after the first half of the batches, restore into a
        fresh ShardedRuntime, and replay the rest: the restored facade
        must stay byte-identical to an uninterrupted single engine."""
        r_arity, s_arity, jr, js, batches = scenario
        program = compile_program(_join_program(r_arity, s_arity, jr, js))
        single = program.start()
        sharded = ShardedRuntime(program, shards=shards, workers="inline")
        cut = len(batches) // 2
        try:
            for batch in batches[:cut]:
                changes = _batch_changes(batch)
                single.transaction(**changes)
                sharded.transaction(**changes)
            snapshot = sharded.checkpoint()
        finally:
            sharded.close()
        resumed = ShardedRuntime(
            program, shards=shards, workers="inline", checkpoint=snapshot
        )
        try:
            assert resumed.restored
            for batch in batches[cut:]:
                changes = _batch_changes(batch)
                expect = single.transaction(**changes)
                got = resumed.transaction(**changes)
                assert _delta_bytes(expect) == _delta_bytes(got)
            for rel in ("R", "S", "J", "OnlyR"):
                assert resumed.dump(rel) == single.dump(rel)
        finally:
            resumed.close()

    def test_process_workers_agree_with_inline(self):
        """One deterministic pass over the IPC path: process workers
        (the production configuration) against the single engine."""
        program = compile_program(_join_program(2, 2, 0, 1))
        single = program.start()
        sharded = program.start(shards=2, shard_workers="process")
        batches = [
            {"inserts": {"R": [(1, 2), (3, 2)], "S": [(2, 9)]},
             "deletes": {}},
            {"inserts": {"R": [(4, 5)], "S": [(5, 1)]},
             "deletes": {"S": [(2, 9)]}},
            {"inserts": {}, "deletes": {"R": [(1, 2)]}},
        ]
        try:
            for changes in batches:
                expect = single.transaction(**changes)
                got = sharded.transaction(**changes)
                assert _delta_bytes(expect) == _delta_bytes(got)
                assert expect.warnings == got.warnings
            for rel in ("R", "S", "J", "OnlyR"):
                assert sharded.dump(rel) == single.dump(rel)
        finally:
            sharded.close()

# ---------------------------------------------------------------------------
# Bulk-load oracle: the grouped cold-start path vs the per-delta
# reference path must be observationally identical.
# ---------------------------------------------------------------------------

AGG_PROGRAM = """
input relation Item(k: bigint, v: bigint)
output relation Sum(k: bigint, s: bigint)
Sum(k, s) :- Item(k, v), var s = Aggregate((k), sum(v)).
"""


class TestBulkLoadOracle:
    """`start(bulk_load=True)` (the default) builds operator state in
    one grouped pass on cold transactions; `bulk_load=False` keeps the
    per-delta reference path.  The two must produce byte-identical
    deltas and identical warnings on the cold transaction AND stay
    identical for every incremental transaction after it."""

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(scenario=_join_scenarios())
    def test_join_negation_bulk_vs_classic(self, scenario):
        r_arity, s_arity, jr, js, batches = scenario
        program = compile_program(_join_program(r_arity, s_arity, jr, js))
        bulk = program.start(bulk_load=True)
        classic = program.start(bulk_load=False)
        for batch in batches:
            changes = _batch_changes(batch)
            got = bulk.transaction(**changes)
            want = classic.transaction(**changes)
            assert _delta_bytes(got) == _delta_bytes(want)
            assert got.warnings == want.warnings
        for rel in ("R", "S", "J", "OnlyR"):
            assert bulk.dump(rel) == classic.dump(rel)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        batches=st.lists(
            st.fixed_dictionaries(
                {
                    "Edge+": st.lists(
                        st.tuples(st.integers(0, 4), st.integers(0, 4)),
                        max_size=6,
                    ),
                    "Edge-": st.lists(
                        st.tuples(st.integers(0, 4), st.integers(0, 4)),
                        max_size=6,
                    ),
                }
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_recursion_bulk_vs_classic(self, batches):
        """Recursive SCCs never take the bulk path themselves, but they
        consume bulk-built upstream deltas — the seam must be exact."""
        program = compile_program(REACH_PROGRAM)
        bulk = program.start(bulk_load=True)
        classic = program.start(bulk_load=False)
        for batch in batches:
            changes = {
                "inserts": {"Edge": batch["Edge+"]},
                "deletes": {"Edge": batch["Edge-"]},
            }
            got = bulk.transaction(**changes)
            want = classic.transaction(**changes)
            assert _delta_bytes(got) == _delta_bytes(want)
        assert bulk.dump("Reach") == classic.dump("Reach")

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        rows=st.lists(
            st.tuples(st.integers(0, 3), st.integers(-5, 5)), max_size=12
        ),
        extra=st.lists(
            st.tuples(st.integers(0, 3), st.integers(-5, 5)), max_size=6
        ),
    )
    def test_aggregate_bulk_vs_classic(self, rows, extra):
        program = compile_program(AGG_PROGRAM)
        bulk = program.start(bulk_load=True)
        classic = program.start(bulk_load=False)
        got = bulk.transaction(inserts={"Item": rows})
        want = classic.transaction(inserts={"Item": rows})
        assert _delta_bytes(got) == _delta_bytes(want)
        assert got.warnings == want.warnings
        got = bulk.transaction(inserts={"Item": extra})
        want = classic.transaction(inserts={"Item": extra})
        assert _delta_bytes(got) == _delta_bytes(want)
        assert bulk.dump("Sum") == classic.dump("Sum")

    def test_initial_hint_forces_bulk_on_classic_runtime(self):
        """`transaction(initial=True)` takes the bulk path even with
        bulk_load=False — and must still match the reference."""
        program = compile_program(_join_program(2, 2, 0, 1))
        hinted = program.start(bulk_load=False)
        classic = program.start(bulk_load=False)
        changes = {
            "inserts": {"R": [(1, 2), (3, 2), (1, 2)], "S": [(2, 9)]},
            "deletes": {},
        }
        got = hinted.transaction(initial=True, **changes)
        want = classic.transaction(**changes)
        assert _delta_bytes(got) == _delta_bytes(want)
        assert got.warnings == want.warnings
        for rel in ("R", "S", "J", "OnlyR"):
            assert hinted.dump(rel) == classic.dump(rel)


# ---------------------------------------------------------------------------
# Delta-checkpoint oracle: full snapshot + journal segments -> restore
# -> transact must be byte-identical to an uninterrupted engine.
# ---------------------------------------------------------------------------

from repro.dlog.checkpoint import CheckpointStore  # noqa: E402


class TestDeltaCheckpointOracle:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        scenario=_join_scenarios(),
        shards=st.sampled_from([1, 2, 4]),
        data=st.data(),
    )
    def test_chain_restore_mid_sequence(self, scenario, shards, data, tmp_path_factory):
        """Anchor a full snapshot mid-sequence, journal the following
        batches into one delta segment each, restore the chain into a
        fresh runtime (same shard count), and replay the tail: deltas
        stay byte-identical to an uninterrupted single-shard engine."""
        r_arity, s_arity, jr, js, batches = scenario
        anchor = data.draw(st.integers(0, len(batches)), label="anchor")
        cut = data.draw(st.integers(anchor, len(batches)), label="cut")
        directory = str(tmp_path_factory.mktemp("chain"))
        program = compile_program(_join_program(r_arity, s_arity, jr, js))
        reference = program.start()
        subject = program.start(shards=shards, shard_workers="inline")
        store = CheckpointStore(directory, "engine.ckpt", program.program_hash)
        try:
            for batch in batches[:anchor]:
                changes = _batch_changes(batch)
                reference.transaction(**changes)
                subject.transaction(**changes)
            subject.enable_journal()
            store.save_full(subject.checkpoint(), subject.txn_count)
            for batch in batches[anchor:cut]:
                changes = _batch_changes(batch)
                reference.transaction(**changes)
                subject.transaction(**changes)
                store.save_delta(
                    subject.drain_journal(), subject.txn_count
                )
            subject_txns = subject.txn_count
        finally:
            close = getattr(subject, "close", None)
            if close:
                close()

        full, segments = store.load_chain(lambda f: f["txn_count"])
        restored = program.start(
            checkpoint={
                "delta_chain": True,
                "full": full,
                "segments": segments,
            },
            shards=shards,
            shard_workers="inline",
        )
        try:
            assert restored.restored
            # Runtime and ShardedRuntime count their initial static-load
            # transactions differently, so compare against the subject's
            # own counter at the cut point, not the reference's.
            assert restored.txn_count == subject_txns
            for batch in batches[cut:]:
                changes = _batch_changes(batch)
                want = reference.transaction(**changes)
                got = restored.transaction(**changes)
                assert _delta_bytes(want) == _delta_bytes(got)
            for rel in ("R", "S", "J", "OnlyR"):
                assert restored.dump(rel) == reference.dump(rel)
        finally:
            close = getattr(restored, "close", None)
            if close:
                close()
