"""Differential tests across independent implementations.

Two executors exist for a compiled pipeline: the behavioral simulator
(bit-level packets) and the OpenFlow lowering (field maps through flow
tables).  For the table-lookup core they must agree — a classic
differential-testing setup that guards both.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.p4.ir import compile_p4
from repro.p4.openflow import OFSwitch, compile_to_openflow, instantiate_entries
from repro.p4.simulator import Simulator
from repro.p4.tables import FieldMatch, TableEntry

# One-table pipeline with a ternary+exact key: the hardest lookup mode.
PIPELINE_P4 = """
header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
struct headers_t { eth_t eth; }
struct meta_t { bit<8> cls; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
         inout standard_metadata_t std) {
    state start { pkt.extract(hdr.eth); transition accept; }
}

control Ing(inout headers_t hdr, inout meta_t m,
            inout standard_metadata_t std) {
    action classify(bit<8> cls) { m.cls = cls; }
    action drop() { mark_to_drop(); }
    table acl {
        key = {
            std.ingress_port : exact;
            hdr.eth.ethertype : ternary;
        }
        actions = { classify; drop; }
        default_action = drop();
    }
    apply { acl.apply(); }
}
"""


def random_entries(rng, count):
    entries = []
    used = set()
    for _ in range(count):
        port = rng.randrange(4)
        value = rng.randrange(1 << 16)
        mask = rng.choice([0xFFFF, 0xFF00, 0x00FF, 0xF000, 0x0000])
        priority = rng.randrange(1, 20)
        key = (port, value & mask, mask, priority)
        if key in used:
            continue
        used.add(key)
        entries.append(
            TableEntry(
                [FieldMatch.exact(port), FieldMatch.ternary(value & mask, mask)],
                "classify",
                [rng.randrange(256)],
                priority=priority,
            )
        )
    return entries


class TestSimulatorVsOpenFlow:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_lookup_agreement(self, seed):
        rng = random.Random(seed)
        pipeline = compile_p4(PIPELINE_P4)
        sim = Simulator(pipeline, n_ports=4)
        entries = random_entries(rng, 12)
        for entry in entries:
            sim.table("acl").insert(entry)

        program = compile_to_openflow(pipeline)
        switch = OFSwitch(instantiate_entries(program, sim.tables))

        for _ in range(40):
            port = rng.randrange(4)
            ethertype = rng.randrange(1 << 16)
            action, params, hit = sim.table("acl").lookup([port, ethertype])
            trace = switch.process(
                {"std.ingress_port": port, "hdr.eth.ethertype": ethertype}
            )
            assert trace, "OF switch must always apply some action"
            of_action, of_params = trace[0]
            assert of_action == action
            assert of_params == tuple(params)

    def test_priority_tie_break_matches(self):
        """Same-priority overlapping entries: both executors must use a
        deterministic and identical order (insertion order here)."""
        pipeline = compile_p4(PIPELINE_P4)
        sim = Simulator(pipeline, n_ports=4)
        # Both entries match ethertype 0x1234 at the same priority.
        first = TableEntry(
            [FieldMatch.exact(0), FieldMatch.ternary(0x0034, 0x00FF)],
            "classify",
            [1],
            priority=5,
        )
        second = TableEntry(
            [FieldMatch.exact(0), FieldMatch.ternary(0x1200, 0xFF00)],
            "classify",
            [2],
            priority=5,
        )
        sim.table("acl").insert(first)
        sim.table("acl").insert(second)
        action, params, _ = sim.table("acl").lookup([0, 0x1234])

        program = compile_to_openflow(pipeline)
        switch = OFSwitch(instantiate_entries(program, sim.tables))
        trace = switch.process(
            {"std.ingress_port": 0, "hdr.eth.ethertype": 0x1234}
        )
        assert trace[0] == (action, tuple(params))


class TestMultiDevice:
    def test_controller_programs_all_devices_identically(self):
        from repro.apps.snvs import build_snvs
        from repro.core.controller import NerpaController
        from repro.mgmt.database import Database

        project = build_snvs()
        db = Database(project.schema)
        switches = [project.new_simulator(n_ports=8) for _ in range(3)]
        controller = NerpaController(project, db, switches).start()
        db.transact(
            [
                {"op": "insert", "table": "Vlan",
                 "row": {"vid": 7, "description": ""}},
                {"op": "insert", "table": "Port",
                 "row": {"name": "p0", "port_num": 0,
                         "vlan_mode": "access", "tag": 7}},
            ]
        )
        for switch in switches:
            assert len(switch.table("in_vlan")) == 1
            assert switch.multicast_groups[7] == [0]
        db.transact([{"op": "delete", "table": "Port", "where": []}])
        for switch in switches:
            assert len(switch.table("in_vlan")) == 0
        controller.stop()


class TestPersistedRestart:
    def test_restore_then_reconcile(self, tmp_path):
        """The full robustness story: database persisted, controller
        and database both restart, device keeps running — the system
        converges without duplicate writes or lost entries."""
        from repro.apps.snvs import build_snvs
        from repro.core.controller import NerpaController
        from repro.mgmt.database import Database
        from repro.mgmt.persist import Persister, restore

        project = build_snvs()
        db = Database(project.schema)
        persister = Persister(db, str(tmp_path))
        switch = project.new_simulator(n_ports=8)
        controller = NerpaController(project, db, [switch]).start()
        db.transact(
            [
                {"op": "insert", "table": "Vlan",
                 "row": {"vid": 5, "description": ""}},
                {"op": "insert", "table": "Port",
                 "row": {"name": "p1", "port_num": 1,
                         "vlan_mode": "access", "tag": 5}},
            ]
        )
        entries_before = len(switch.table("in_vlan"))
        controller.stop()
        persister.snapshot()
        persister.close()

        db2 = restore(str(tmp_path))
        assert db2.count("Port") == 1
        controller2 = NerpaController(project, db2, [switch])
        controller2.start(reconcile=True)
        assert len(switch.table("in_vlan")) == entries_before
        assert controller2.entries_written == 0  # nothing was stale
