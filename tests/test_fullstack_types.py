"""Full-stack tests for the richer column types: optionals, sets, and
maps flowing from the management plane through generated relations into
rules — the seams the type bridge exists for."""

import pytest

from repro.core import NerpaController, nerpa_build
from repro.mgmt.database import Database
from repro.mgmt.schema import (
    ColumnSchema,
    ColumnType,
    DatabaseSchema,
    TableSchema,
)

P4 = """
header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
struct headers_t { eth_t eth; }
struct meta_t { bit<8> qos; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
         inout standard_metadata_t std) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control Ing(inout headers_t hdr, inout meta_t m,
            inout standard_metadata_t std) {
    action set_qos(bit<8> level) { m.qos = level; }
    action drop() { mark_to_drop(); }
    table qos {
        key = { std.ingress_port : exact; }
        actions = { set_qos; drop; }
        default_action = drop();
    }
    apply { qos.apply(); }
}
"""

SCHEMA = DatabaseSchema(
    "types",
    [
        TableSchema(
            "Iface",
            [
                ColumnSchema("port", ColumnType("integer")),
                # optional: absent means "use default qos"
                ColumnSchema("qos", ColumnType("integer", min=0, max=1)),
                # set: feature flags
                ColumnSchema(
                    "flags", ColumnType("string", min=0, max="unlimited")
                ),
                # map: arbitrary annotations
                ColumnSchema(
                    "external_ids",
                    ColumnType("string", "string", min=0, max="unlimited"),
                ),
            ],
        )
    ],
)

RULES = """
// qos column is Option<bigint>: absent -> default 1; the "gold" flag
// overrides; an external_ids entry can force a specific level.
Qos(p as bit<16>, QosActionSetQos{level as bit<8>}) :-
    Iface(_, p, q, flags, ids),
    var base = unwrap_or(q, 1),
    var flagged = if (vec_contains(flags, "gold")) 7 else base,
    var level = unwrap_or(parse_int(unwrap_or(map_get(ids, "qos-override"),
                                              to_string(flagged))), flagged).
"""


@pytest.fixture()
def stack():
    project = nerpa_build(SCHEMA, RULES, P4)
    db = Database(project.schema)
    switch = project.new_simulator(n_ports=8)
    controller = NerpaController(project, db, [switch]).start()
    return db, switch, controller


def add_iface(stack, port, qos=None, flags=(), external_ids=None):
    db, _, controller = stack
    row = {"port": port, "flags": frozenset(flags)}
    if qos is not None:
        row["qos"] = qos
    if external_ids:
        row["external_ids"] = external_ids
    db.transact([{"op": "insert", "table": "Iface", "row": row}])
    controller.drain()


class TestRichTypesEndToEnd:
    def test_optional_absent_uses_default(self, stack):
        db, switch, controller = stack
        add_iface(stack, 1)
        assert switch.table("qos").lookup([1]) == ("set_qos", (1,), True)

    def test_optional_present(self, stack):
        db, switch, controller = stack
        add_iface(stack, 2, qos=4)
        assert switch.table("qos").lookup([2])[1] == (4,)

    def test_set_membership_drives_rule(self, stack):
        db, switch, controller = stack
        add_iface(stack, 3, qos=2, flags=["gold", "other"])
        assert switch.table("qos").lookup([3])[1] == (7,)

    def test_map_override_wins(self, stack):
        db, switch, controller = stack
        add_iface(stack, 4, qos=2, external_ids={"qos-override": "5"})
        assert switch.table("qos").lookup([4])[1] == (5,)

    def test_mutating_set_updates_entry(self, stack):
        db, switch, controller = stack
        add_iface(stack, 5, qos=2)
        assert switch.table("qos").lookup([5])[1] == (2,)
        db.transact(
            [
                {
                    "op": "mutate",
                    "table": "Iface",
                    "where": [["port", "==", 5]],
                    "mutations": [["flags", "insert", "gold"]],
                }
            ]
        )
        controller.drain()
        assert switch.table("qos").lookup([5])[1] == (7,)

    def test_clearing_optional_reverts_to_default(self, stack):
        db, switch, controller = stack
        add_iface(stack, 6, qos=4)
        db.transact(
            [
                {
                    "op": "update",
                    "table": "Iface",
                    "where": [["port", "==", 6]],
                    "row": {"qos": None},
                }
            ]
        )
        controller.drain()
        assert switch.table("qos").lookup([6])[1] == (1,)
