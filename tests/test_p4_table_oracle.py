"""Property test: table lookup semantics vs. a brute-force oracle.

The indexed implementations (hash for exact, per-prefix-length dicts
for lpm, priority lists for ternary) must agree with the obvious
O(entries) reference on random tables and random probes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.p4.p4info import ActionParam, MatchField, P4Info
from repro.p4.tables import FieldMatch, TableEntry, TableState

WIDTH = 8


def make_state(kinds):
    info = P4Info()
    info.add_action("act", [ActionParam("p", 16)])
    tinfo = info.add_table(
        "t",
        [MatchField(f"k{i}", WIDTH, kind) for i, kind in enumerate(kinds)],
        ["act"],
        None,
        4096,
    )
    return TableState(tinfo)


def oracle_lookup(entries, kinds, values):
    """Reference semantics straight from the P4 spec."""
    candidates = [
        e
        for e in entries
        if all(
            m.matches(v, WIDTH) for m, v in zip(e.matches, values)
        )
    ]
    if not candidates:
        return None
    if any(k == "ternary" for k in kinds):
        # Highest priority wins; ties by insertion order (list order).
        best = max(range(len(candidates)), key=lambda i: (candidates[i].priority, -i))
        return candidates[best]
    if "lpm" in kinds:
        pos = kinds.index("lpm")
        return max(candidates, key=lambda e: e.matches[pos].arg or 0)
    return candidates[0]


@st.composite
def table_scenario(draw):
    kinds = draw(
        st.sampled_from(
            [
                ("exact",),
                ("lpm",),
                ("exact", "lpm"),
                ("ternary",),
                ("exact", "ternary"),
                ("lpm", "ternary"),
            ]
        )
    )
    entries = []
    seen = set()
    for _ in range(draw(st.integers(0, 10))):
        matches = []
        for kind in kinds:
            value = draw(st.integers(0, (1 << WIDTH) - 1))
            if kind == "exact":
                matches.append(FieldMatch.exact(value))
            elif kind == "lpm":
                plen = draw(st.integers(0, WIDTH))
                value &= ~((1 << (WIDTH - plen)) - 1) & ((1 << WIDTH) - 1)
                matches.append(FieldMatch.lpm(value, plen))
            else:
                mask = draw(st.integers(0, (1 << WIDTH) - 1))
                matches.append(FieldMatch.ternary(value & mask, mask))
        priority = (
            draw(st.integers(1, 9)) if any(k == "ternary" for k in kinds) else 0
        )
        entry = TableEntry(matches, "act", [draw(st.integers(0, 99))], priority)
        if entry.match_key() in seen:
            continue
        seen.add(entry.match_key())
        entries.append(entry)
    probes = draw(
        st.lists(
            st.tuples(*[st.integers(0, (1 << WIDTH) - 1) for _ in kinds]),
            min_size=1,
            max_size=15,
        )
    )
    return kinds, entries, probes


class TestTableOracle:
    @settings(max_examples=120, deadline=None)
    @given(table_scenario())
    def test_lookup_matches_oracle(self, scenario):
        kinds, entries, probes = scenario
        state = make_state(kinds)
        for entry in entries:
            state.insert(entry)
        for probe in probes:
            expected = oracle_lookup(entries, kinds, list(probe))
            got_action, got_params, hit = state.lookup(list(probe))
            if expected is None:
                assert not hit
            else:
                assert hit
                # For ternary ties we only require a maximal-priority
                # candidate, since P4 leaves equal-priority order
                # target-defined; both implementations use insertion
                # order, so parameters must match the oracle exactly.
                assert got_params == expected.action_params

    @settings(max_examples=60, deadline=None)
    @given(table_scenario())
    def test_delete_restores_oracle_agreement(self, scenario):
        kinds, entries, probes = scenario
        if not entries:
            return
        state = make_state(kinds)
        for entry in entries:
            state.insert(entry)
        removed = entries[len(entries) // 2]
        state.delete(removed)
        remaining = [e for e in entries if e.match_key() != removed.match_key()]
        for probe in probes:
            expected = oracle_lookup(remaining, kinds, list(probe))
            _, got_params, hit = state.lookup(list(probe))
            if expected is None:
                assert not hit
            else:
                assert hit
                assert got_params == expected.action_params
