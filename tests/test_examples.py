"""Smoke tests: every example script must run to completion.

Examples are documentation that executes; breaking one is breaking the
README.  Run them in-process (they all define main()) with stdout
captured.
"""

import importlib.util
import io
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    captured = io.StringIO()
    stdout = sys.stdout
    sys.stdout = captured
    try:
        module.main()
    finally:
        sys.stdout = stdout
    return captured.getvalue()


@pytest.mark.parametrize(
    "name",
    ["quickstart", "snvs_demo", "reachability_routing", "ovn_growth_report",
     "l3_router",
     pytest.param("observability_demo", marks=pytest.mark.serial)],
)
def test_example_runs(name):
    output = run_example(name)
    assert output.strip(), f"{name} produced no output"


def test_quickstart_shows_generated_relations():
    output = run_example("quickstart")
    assert "input relation PortCfg" in output
    assert "output relation Patch" in output


def test_ovn_report_mentions_correlation():
    output = run_example("ovn_growth_report")
    assert "correlation" in output


def test_l3_router_longest_prefix():
    output = run_example("l3_router")
    assert "port 3" in output  # the /24 won before withdrawal


@pytest.mark.serial  # the demo enables the global obs registry
def test_observability_demo_traces_one_update_id():
    output = run_example("observability_demo")
    # One config change's trace covers every plane under a single id...
    for stage in (
        "mgmt.transact",
        "controller.sync",
        "engine.transaction",
        "device.write",
    ):
        assert stage in output
    import re

    uid = re.search(r"update-id (upd-\d+)", output).group(1)
    trace = output.split(f"trace {uid}")[1].split("\n\n")[0]
    for stage in ("mgmt.transact", "engine.transaction", "device.write"):
        assert stage in trace, f"{stage} missing from trace {uid}"
    assert "operators=" in trace  # per-operator engine stats
    # ...and the digest feedback links back to it.
    assert f"links back to config change {uid}" in output
    assert "mgmt_txns_total" in output  # registry export present
