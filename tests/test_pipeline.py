"""Staged changeset pipeline: IR algebra, queues, and end-to-end
ordering/isolation properties.

Covers the pipeline subsystem introduced by the ingest/evaluate/apply
decomposition of the controller:

* the shared coalescing algebra of :class:`Changeset` and
  :class:`DeviceBatch` (modify = delete+insert, cancellation, last
  writer wins, round-trip elision);
* the **ordering invariant**: per-device writes apply deltas in
  engine-transaction order, deletes before inserts within a batch;
* :class:`CoalescingQueue` semantics (tail merge, barriers,
  supersession, join deadlines, close);
* the OVSDB ``modify`` path, where ``old`` carries only the changed
  columns;
* a management-plane reconnect-reconcile racing a concurrent monitor
  update (the reconcile runs as an engine task, so the race is ordered);
* slow-device isolation: a fault-injected device backs up only its own
  queue.
"""

import threading
import time

import pytest

from repro.core.controller import NerpaController
from repro.core.pipeline import (
    Changeset,
    CoalescingQueue,
    DeviceBatch,
    PipelineStalledError,
    nerpa_build,
)
from repro.mgmt.client import ManagementClient
from repro.mgmt.database import Database
from repro.mgmt.schema import simple_schema
from repro.mgmt.server import ManagementServer
from repro.net import RetryPolicy
from repro.p4.tables import FieldMatch, TableEntry
from repro.p4runtime.api import DeviceService

SCHEMA = simple_schema(
    "net", {"PortCfg": {"port": "integer", "out_port": "integer"}}
)

P4 = """
header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
struct headers_t { eth_t eth; }
struct meta_t { bit<1> pad; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
         inout standard_metadata_t std) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control Ing(inout headers_t hdr, inout meta_t m,
            inout standard_metadata_t std) {
    action forward(bit<16> port) { std.egress_spec = port; }
    action drop() { mark_to_drop(); }
    table patch {
        key = { std.ingress_port : exact; }
        actions = { forward; drop; }
        default_action = drop();
    }
    apply { patch.apply(); }
}
"""

RULES = "Patch(p as bit<16>, PatchActionForward{o as bit<16>}) :- PortCfg(_, p, o)."

FAST = RetryPolicy(
    connect_timeout=2.0,
    call_timeout=2.0,
    max_reconnect_attempts=100,
    base_delay=0.01,
    max_delay=0.1,
)


def build():
    project = nerpa_build(SCHEMA, RULES, P4)
    db = Database(project.schema)
    switch = project.new_simulator(n_ports=16)
    return project, db, switch


def add_port(db, port, out_port):
    db.transact(
        [
            {
                "op": "insert",
                "table": "PortCfg",
                "row": {"port": port, "out_port": out_port},
            }
        ]
    )


def set_out_port(db, port, out_port):
    db.transact(
        [
            {
                "op": "update",
                "table": "PortCfg",
                "where": [["port", "==", port]],
                "row": {"out_port": out_port},
            }
        ]
    )


def wait_for(predicate, timeout=10.0, what="condition"):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {what}")


def entry(port, out_port, action="forward"):
    params = [] if action == "drop" else [out_port]
    return TableEntry([FieldMatch.exact(port)], action, params)


# ---------------------------------------------------------------------------
# Coalescing algebra (the IR level).
# ---------------------------------------------------------------------------


class TestChangesetAlgebra:
    def test_modify_is_delete_plus_insert(self):
        cs = Changeset()
        cs.record_delete("R", ("T", "u1"), ("u1", 1))
        cs.record_insert("R", ("T", "u1"), ("u1", 2))
        inserts, deletes = cs.to_transaction()
        assert deletes == {"R": [("u1", 1)]}
        assert inserts == {"R": [("u1", 2)]}

    def test_insert_then_delete_cancels(self):
        cs = Changeset()
        cs.record_insert("R", ("T", "u1"), ("u1", 1))
        cs.record_delete("R", ("T", "u1"), ("u1", 1))
        assert cs.to_transaction() == ({}, {})
        assert cs.is_empty()

    def test_last_writer_wins(self):
        cs = Changeset()
        cs.record_insert("R", ("T", "u1"), ("u1", 1))
        cs.record_delete("R", ("T", "u1"), ("u1", 1))
        cs.record_insert("R", ("T", "u1"), ("u1", 3))
        inserts, deletes = cs.to_transaction()
        assert deletes == {}
        assert inserts == {"R": [("u1", 3)]}

    def test_round_trip_is_dropped(self):
        # delete(a) then insert(a) — the row ends where it started.
        cs = Changeset()
        cs.record_delete("R", ("T", "u1"), ("u1", 1))
        cs.record_insert("R", ("T", "u1"), ("u1", 1))
        assert cs.to_transaction() == ({}, {})

    def test_coalesce_merges_per_key(self):
        first = Changeset()
        first.txns = 1
        first.record_insert("R", ("T", "u1"), ("u1", 1))
        second = Changeset()
        second.txns = 1
        second.record_delete("R", ("T", "u1"), ("u1", 1))
        second.record_insert("R", ("T", "u1"), ("u1", 2))
        second.record_insert("R", ("T", "u2"), ("u2", 9))
        assert first.coalesce(second)
        inserts, deletes = first.to_transaction()
        # u1: insert(1); delete(1)+insert(2) => net insert(2), no delete
        assert deletes == {}
        assert sorted(inserts["R"]) == [("u1", 2), ("u2", 9)]
        assert first.txns == 2

    def test_different_sources_do_not_merge(self):
        mgmt = Changeset("mgmt")
        digest = Changeset("digest")
        assert not mgmt.coalesce(digest)
        assert not digest.coalesce(mgmt)


class TestDeviceBatchOrdering:
    def test_deletes_emitted_before_inserts(self):
        batch = DeviceBatch(1)
        batch.record_insert("patch", (("exact", 2),), entry(2, 7))
        batch.record_delete("patch", (("exact", 1),), entry(1, 5))
        writes = batch.emit_writes()
        kinds = [w.kind for w in writes]
        assert kinds == ["DELETE", "INSERT"]

    def test_unchanged_round_trip_dropped(self):
        batch = DeviceBatch(1)
        e = entry(1, 5)
        batch.record_delete("patch", e.match_key(), e)
        batch.record_insert("patch", e.match_key(), entry(1, 5))
        assert batch.emit_writes() == []

    def test_changed_entry_is_delete_then_insert(self):
        batch = DeviceBatch(1)
        e_old, e_new = entry(1, 5), entry(1, 7)
        batch.record_delete("patch", e_old.match_key(), e_old)
        batch.record_insert("patch", e_new.match_key(), e_new)
        writes = batch.emit_writes()
        assert [w.kind for w in writes] == ["DELETE", "INSERT"]
        assert writes[0].entry.action_params == (5,)
        assert writes[1].entry.action_params == (7,)

    def test_merge_only_moves_forward(self):
        batch = DeviceBatch(5)
        stale = DeviceBatch(4)
        same = DeviceBatch(5)
        newer = DeviceBatch(9)  # gaps are txns with no writes for us
        assert not batch.coalesce(stale)
        assert not batch.coalesce(same)
        assert batch.coalesce(newer)
        assert batch.last_seq == 9

    def test_merge_net_effect_matches_sequential_application(self):
        first = DeviceBatch(1)
        first.record_insert("patch", (("exact", 1),), entry(1, 5))
        second = DeviceBatch(2)
        second.record_delete("patch", (("exact", 1),), entry(1, 5))
        second.record_insert("patch", (("exact", 1),), entry(1, 7))
        assert first.coalesce(second)
        writes = first.emit_writes()
        # insert(5); delete(5)+insert(7) => net insert(7) only
        assert [w.kind for w in writes] == ["INSERT"]
        assert writes[0].entry.action_params == (7,)


# ---------------------------------------------------------------------------
# Queue semantics.
# ---------------------------------------------------------------------------


class _Item:
    """Mergeable test item: absorbs any other _Item."""

    def __init__(self, n):
        self.values = [n]

    def coalesce(self, other):
        if not isinstance(other, _Item):
            return False
        self.values.extend(other.values)
        return True


class _Barrier:
    def coalesce(self, other):
        return False


class TestCoalescingQueue:
    def test_tail_merges_bursts(self):
        q = CoalescingQueue()
        for n in range(5):
            q.put(_Item(n))
        assert len(q) == 1
        assert q.coalesced == 4
        assert q.pop().values == [0, 1, 2, 3, 4]

    def test_consumed_head_never_merges(self):
        q = CoalescingQueue()
        q.put(_Item(0))
        head = q.pop()
        q.put(_Item(1))
        assert head.values == [0]
        assert q.pop().values == [1]

    def test_control_items_are_barriers(self):
        q = CoalescingQueue()
        q.put(_Item(0))
        q.put(_Barrier())
        q.put(_Item(1))  # must not merge backwards past the barrier
        assert len(q) == 3

    def test_supersedes_drops_queued_matches(self):
        q = CoalescingQueue()
        q.put(_Item(0))
        q.put(_Barrier())
        q.put(_Barrier(), supersedes=lambda item: isinstance(item, _Item))
        items = [q.pop(timeout=0.1) for _ in range(2)]
        assert all(isinstance(i, _Barrier) for i in items)
        # Join accounting followed the drop: 2 items remain unfinished.
        assert q.unfinished == 2

    def test_join_raises_on_deadline(self):
        q = CoalescingQueue(name="stuck")
        q.put(_Barrier())
        with pytest.raises(PipelineStalledError):
            q.join(time.monotonic() + 0.05)

    def test_join_completes_after_task_done(self):
        q = CoalescingQueue()
        q.put(_Barrier())
        done = threading.Event()

        def consume():
            q.pop()
            q.task_done()
            done.set()

        threading.Thread(target=consume, daemon=True).start()
        q.join(time.monotonic() + 5.0)
        assert done.is_set()
        assert q.unfinished == 0

    def test_producer_woken_from_backpressure_recoalesces_tail(self):
        """Regression: a producer blocked on a full queue must re-run
        the tail-coalesce check when it wakes — the tail it saw before
        sleeping may have been popped and replaced by a mergeable one.
        Appending unconditionally gave the burst a second distinct slot
        (= a spurious extra wire write)."""
        q = CoalescingQueue(maxlen=2)
        q.put(_Barrier())
        q.put(_Barrier())  # full; neither merges with an _Item

        started = threading.Event()

        def blocked_put():
            started.set()
            q.put(_Item(1))

        t = threading.Thread(target=blocked_put, daemon=True)
        t.start()
        started.wait(2.0)
        wait_for(
            lambda: q._not_full._waiters, what="producer to block on full"
        )
        # While the producer sleeps: the consumer drains both barriers
        # and another producer appends a mergeable tail.  Do it all
        # under the queue lock so the blocked producer cannot observe
        # any intermediate state — it wakes to exactly this picture.
        with q._lock:
            q._items.clear()
            q._unfinished -= 2
            q._items.append(_Item(0))
            q._unfinished += 1
            q._not_full.notify_all()
        t.join(2.0)
        assert not t.is_alive()
        assert len(q) == 1
        assert q.coalesced == 1
        assert q.pop().values == [0, 1]

    def test_close_unblocks_consumer(self):
        q = CoalescingQueue()
        result = []

        def consume():
            result.append(q.pop())

        t = threading.Thread(target=consume, daemon=True)
        t.start()
        q.close()
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert result == [None]
        q.put(_Item(1))  # dropped, not raised
        assert len(q) == 0


# ---------------------------------------------------------------------------
# End-to-end pipeline properties.
# ---------------------------------------------------------------------------


class _RecordingService(DeviceService):
    """Device that records the order writes arrive in."""

    def __init__(self, sim):
        super().__init__(sim)
        self.log = []

    def apply_batch(self, updates, mcast=None):
        self.log.append([(u.kind, tuple(u.entry.action_params))
                         for u in updates])
        return super().apply_batch(updates, mcast)


class _SlowService(DeviceService):
    """Fault-injected device: fixed latency per write round trip."""

    def __init__(self, sim, delay):
        super().__init__(sim)
        self.delay = delay

    def apply_batch(self, updates, mcast=None):
        time.sleep(self.delay)
        return super().apply_batch(updates, mcast)


class TestEndToEndOrdering:
    def test_writes_apply_in_transaction_order_deletes_first(self):
        project, db, switch = build()
        service = _RecordingService(switch)
        controller = NerpaController(project, db, [service]).start()
        try:
            add_port(db, 1, 5)
            controller.drain()
            set_out_port(db, 1, 7)  # delete (5) + insert (7), one batch
            controller.drain()
            add_port(db, 2, 9)
            controller.drain()
        finally:
            controller.stop()
        flat = [op for batch in service.log if batch for op in batch]
        assert flat == [
            ("INSERT", (5,)),
            ("DELETE", (5,)),
            ("INSERT", (7,)),
            ("INSERT", (9,)),
        ]
        # Within the modify batch, the delete preceded the insert.
        modify_batch = service.log[1]
        assert [k for k, _ in modify_batch] == ["DELETE", "INSERT"]

    def test_burst_coalesces_into_fewer_device_round_trips(self):
        project, db, switch = build()
        slow = _SlowService(switch, delay=0.03)
        controller = NerpaController(project, db, [slow]).start()
        try:
            for port in range(12):
                add_port(db, port, port + 1)
            controller.drain()
            assert len(switch.table("patch")) == 12
            issued = controller.devices[0].writes_issued
            # The burst outran the 30 ms device; queued work merged.
            # Merging can land at either queue depending on where the
            # burst catches the pipeline: changesets piling up behind a
            # busy engine merge in the engine queue, batches piling up
            # behind the slow writer merge in the device queue.  Either
            # way the device saw fewer round trips than transactions.
            assert issued < 12
            merged = (
                controller._engine_queue.coalesced
                + controller._writers[0].queue.coalesced
            )
            assert merged > 0
        finally:
            controller.stop()

    def test_unbatched_mode_issues_one_write_per_transaction(self):
        project, db, switch = build()
        controller = NerpaController(
            project, db, [switch], coalesce=False
        ).start()
        try:
            for port in range(5):
                add_port(db, port, port + 1)
            controller.drain()
            assert controller.devices[0].writes_issued >= 5
        finally:
            controller.stop()


class TestOvsdbModifyPath:
    def test_modify_old_carries_only_changed_columns(self):
        """The monitor's ``modify`` update sends ``old`` with just the
        changed columns; ingest must reconstruct the full old row or
        the engine retracts the wrong tuple."""
        project, db, switch = build()
        controller = NerpaController(project, db, [switch]).start()
        try:
            add_port(db, 1, 5)
            set_out_port(db, 1, 7)
            controller.drain()
            # Exactly one engine row survives — the updated one.
            relation = project.bindings.relation_for_ovsdb["PortCfg"]
            rows = controller.runtime.dump(relation)
            assert len(rows) == 1
            assert switch.table("patch").lookup([1]) == ("forward", (7,), True)
            assert len(switch.table("patch")) == 1
        finally:
            controller.stop()

    def test_modify_coalesced_with_insert_in_one_changeset(self):
        """A burst holding an insert and a later modify of the same row
        nets out to a single insert of the final value."""
        project, db, switch = build()
        slow = _SlowService(switch, delay=0.05)
        controller = NerpaController(project, db, [slow]).start()
        try:
            controller.drain()  # initial sync out of the way
            add_port(db, 1, 5)
            set_out_port(db, 1, 6)
            set_out_port(db, 1, 7)
            controller.drain()
            assert switch.table("patch").lookup([1]) == ("forward", (7,), True)
            assert len(switch.table("patch")) == 1
        finally:
            controller.stop()


class TestSlowDeviceIsolation:
    def test_slow_device_backs_up_only_its_own_queue(self):
        project, db, switch = build()
        slow_sim = project.new_simulator(n_ports=16)
        slow = _SlowService(slow_sim, delay=0.2)
        controller = NerpaController(project, db, [switch, slow]).start()
        try:
            started = time.time()
            for port in range(6):
                add_port(db, port, port + 1)
            # The healthy device converges while the slow one is still
            # sleeping through its first round trip.
            wait_for(
                lambda: len(switch.table("patch")) == 6,
                timeout=5.0,
                what="healthy device to converge",
            )
            healthy_latency = time.time() - started
            assert healthy_latency < 0.2  # under one slow round trip
            assert len(slow_sim.table("patch")) < 6
            controller.drain()
            assert len(slow_sim.table("patch")) == 6
            # The backlog merged: far fewer round trips than txns.
            assert controller.devices[1].writes_issued < 6
        finally:
            controller.stop()


@pytest.mark.slow
class TestReconnectReconcileRace:
    def test_update_racing_reconcile_is_not_lost(self):
        """A monitor update landing while the reconnect-reconcile runs
        must be ordered after it (both execute on the engine thread),
        ending converged — nothing lost, nothing double-applied.

        Synchronization is by pipeline stage events, never timing: the
        churn thread is released exactly when the reconcile *starts*
        (so its updates genuinely race the re-subscription), completion
        is observed via a sentinel row whose monitor delivery — FIFO
        behind every churn update — marks full ingestion, and
        ``drain()`` then flushes evaluate/apply before the exact-state
        assertions.
        """
        project = nerpa_build(SCHEMA, RULES, P4)
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=64)
        import socket as _socket

        with _socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            port = s.getsockname()[1]
        server = ManagementServer(db, port=port).start()
        client = ManagementClient("127.0.0.1", port, policy=FAST)
        controller = NerpaController(project, client, [switch])

        # Stage-boundary events, hooked before start() so the pipeline
        # uses the instrumented callables throughout.
        reconcile_started = threading.Event()
        reconcile_done = threading.Event()
        inner_reconcile = controller._reconcile_mgmt

        def reconcile_spy():
            reconcile_started.set()
            try:
                inner_reconcile()
            finally:
                reconcile_done.set()

        controller._reconcile_mgmt = reconcile_spy

        SENTINEL = 900
        sentinel_ingested = threading.Event()
        inner_on_updates = controller._on_updates

        def on_updates_spy(updates):
            inner_on_updates(updates)
            for _table, rows in updates:
                for _uuid, update in rows.items():
                    row = getattr(update, "new", None)
                    if row and row.get("port") == SENTINEL:
                        sentinel_ingested.set()

        controller._on_updates = on_updates_spy
        controller.start()
        try:
            for p in range(8):
                add_port(db, p, p + 1)
            controller.drain()
            server.stop()
            # Changes while the controller is deaf.
            for p in range(8, 16):
                add_port(db, p, p + 1)

            # Churn racing the reconcile: released by the reconcile
            # actually starting, not by a sleep guessing when it might.
            def churn():
                if not reconcile_started.wait(30.0):
                    return
                for p in range(16, 48):
                    add_port(db, p, p + 1)

            racer = threading.Thread(target=churn, daemon=True)
            racer.start()
            server = ManagementServer(db, port=port).start()
            assert reconcile_done.wait(30.0), "reconcile never ran"
            racer.join(30.0)
            assert not racer.is_alive(), "churn thread stuck"

            # The sentinel commits after every churn row, so its
            # monitor delivery (FIFO per connection) proves all churn
            # updates are ingested; drain() then settles the pipeline.
            add_port(db, SENTINEL, SENTINEL + 1)
            assert sentinel_ingested.wait(30.0), "sentinel never delivered"
            controller.drain()

            # Exact end state: nothing lost, nothing double-applied.
            assert len(switch.table("patch")) == db.count("PortCfg")
            relation = project.bindings.relation_for_ovsdb["PortCfg"]
            assert len(controller.runtime.dump(relation)) == db.count(
                "PortCfg"
            )
        finally:
            controller.stop()
            client.close()
            server.stop()


class TestPipelineObservability:
    pytestmark = pytest.mark.serial  # enables/resets the global obs registry

    def test_metrics_expose_queue_depths_and_stage_timings(self):
        project, db, switch = build()
        controller = NerpaController(project, db, [switch]).start()
        try:
            add_port(db, 1, 5)
            controller.drain()
            pipeline = controller.metrics()["pipeline"]
            assert pipeline["engine_queue_depth"] == 0
            assert pipeline["device_queue_depths"] == {"device-0": 0}
            assert pipeline["device_writes_issued"]["device-0"] >= 1
            stages = pipeline["stage_seconds"]
            for stage in ("ingest", "evaluate", "apply"):
                assert stages[stage]["count"] >= 1
                assert stages[stage]["mean"] >= 0.0
        finally:
            controller.stop()

    def test_queue_depth_gauges_when_obs_enabled(self):
        from repro import obs

        obs.enable()
        obs.reset()
        try:
            project, db, switch = build()
            controller = NerpaController(project, db, [switch]).start()
            try:
                add_port(db, 1, 5)
                controller.drain()
                registry = controller.metrics()["registry"]
                gauges = registry["gauges"]
                depth_gauges = [
                    key for key in gauges if "pipeline_queue_depth" in key
                ]
                # One gauge per queue: the engine's plus each device's.
                assert len(depth_gauges) >= 2
                assert all(gauges[key] == 0 for key in depth_gauges)
            finally:
                controller.stop()
        finally:
            obs.disable()
            obs.reset()


# ---------------------------------------------------------------------------
# Two-slot algebra edge cases and barrier×supersede×join interactions.
# The shard dispatcher leans on these from multiple processes, so the
# corner transitions are pinned individually.
# ---------------------------------------------------------------------------


class TestChangesetEdgeCases:
    def test_modify_of_missing_row_still_emits_both_halves(self):
        """A modify whose old row this changeset never saw records the
        stale delete as-is; the engine is the layer that resolves it
        (warn + apply the insert), so nothing may be dropped here."""
        cs = Changeset()
        cs.record_delete("R", ("T", "u1"), ("u1", "stale"))
        cs.record_insert("R", ("T", "u1"), ("u1", "fresh"))
        inserts, deletes = cs.to_transaction()
        assert deletes == {"R": [("u1", "stale")]}
        assert inserts == {"R": [("u1", "fresh")]}

    def test_modify_of_missing_row_resolves_at_the_engine(self):
        """End-to-end: the engine ignores the stale delete with a
        warning and applies the insert — the modify degrades to an
        insert instead of corrupting state."""
        from repro.dlog import compile_program

        runtime = compile_program(
            """
input relation R(k: string, v: string)
output relation Out(k: string, v: string)
Out(k, v) :- R(k, v).
"""
        ).start()
        cs = Changeset()
        cs.record_delete("R", ("T", "u1"), ("u1", "stale"))
        cs.record_insert("R", ("T", "u1"), ("u1", "fresh"))
        inserts, deletes = cs.to_transaction()
        result = runtime.transaction(inserts=inserts, deletes=deletes)
        assert len(result.warnings) == 1
        assert "delete of absent row" in result.warnings[0]
        assert runtime.dump("Out") == {("u1", "fresh")}

    def test_delete_then_modify_pins_oldest_delete(self):
        """delete(a) then modify(b→c): the pending delete keeps the
        oldest value a (what the device actually holds); the modify's
        own stale delete must not overwrite it."""
        cs = Changeset()
        cs.record_delete("R", ("T", "u1"), ("u1", "a"))
        cs.record_delete("R", ("T", "u1"), ("u1", "b"))
        cs.record_insert("R", ("T", "u1"), ("u1", "c"))
        inserts, deletes = cs.to_transaction()
        assert deletes == {"R": [("u1", "a")]}
        assert inserts == {"R": [("u1", "c")]}

    def test_insert_then_modify_collapses_to_final_insert(self):
        cs = Changeset()
        cs.record_insert("R", ("T", "u1"), ("u1", "a"))
        cs.record_delete("R", ("T", "u1"), ("u1", "a"))
        cs.record_insert("R", ("T", "u1"), ("u1", "b"))
        inserts, deletes = cs.to_transaction()
        assert deletes == {}
        assert inserts == {"R": [("u1", "b")]}

    def test_round_trip_key_survives_is_empty_but_emits_nothing(self):
        """delete(a)+insert(a) nets to nothing in the transaction while
        the key's cell still exists — is_empty() must look at cell
        contents, not key presence."""
        cs = Changeset()
        cs.record_delete("R", ("T", "u1"), ("u1", "a"))
        cs.record_insert("R", ("T", "u1"), ("u1", "a"))
        inserts, deletes = cs.to_transaction()
        assert inserts == {} and deletes == {}
        assert not cs.is_empty()  # cell is populated, elision is emission-time

    def test_device_batch_modify_of_missing_entry_is_plain_insert(self):
        batch = DeviceBatch(seq=1)
        batch.record_insert("patch", (5,), entry(5, 7))
        writes = batch.emit_writes()
        assert [w.kind for w in writes] == ["INSERT"]

    def test_device_batch_delete_then_modify_emits_delete_first(self):
        batch = DeviceBatch(seq=1)
        batch.record_delete("patch", (5,), entry(5, 7))
        batch.record_delete("patch", (5,), entry(5, 8))
        batch.record_insert("patch", (5,), entry(5, 9))
        writes = batch.emit_writes()
        assert [w.kind for w in writes] == ["DELETE", "INSERT"]
        assert tuple(writes[0].entry.action_params) == (7,)  # oldest pinned
        assert tuple(writes[1].entry.action_params) == (9,)


class TestQueueBarrierSupersedeJoin:
    def test_supersede_keeps_barriers_and_join_accounting(self):
        """Dropping superseded items must decrement unfinished exactly
        once per drop, so a later join sees only surviving work."""
        q = CoalescingQueue()
        q.put(_Item(0))
        q.put(_Barrier())
        q.put(_Item(1))
        assert q.unfinished == 3
        q.put(_Barrier(), supersedes=lambda item: isinstance(item, _Item))
        assert q.unfinished == 2
        done = threading.Event()

        def consume():
            while q.pop(timeout=1.0) is not None:
                q.task_done()
                if q.unfinished == 0:
                    break
            done.set()

        threading.Thread(target=consume, daemon=True).start()
        q.join(time.monotonic() + 5.0)
        assert done.wait(5.0)
        assert q.unfinished == 0

    def test_supersede_wakes_producer_blocked_on_full_queue(self):
        q = CoalescingQueue(maxlen=2)
        q.put(_Barrier())
        q.put(_Barrier())
        started = threading.Event()
        finished = threading.Event()

        def producer():
            started.set()
            q.put(_Barrier())  # blocks: queue is full
            finished.set()

        threading.Thread(target=producer, daemon=True).start()
        assert started.wait(2.0)
        assert not finished.wait(0.1)  # genuinely blocked
        q.put(_Barrier(), supersedes=lambda item: True)
        assert finished.wait(5.0)
        assert len(q) == 2
        assert q.unfinished == 2

    def test_supersede_exposes_mergeable_tail(self):
        """Removing a barrier via supersede legitimately re-enables tail
        coalescing: nothing remains between the old tail and the new
        item, so merging preserves order."""
        q = CoalescingQueue()
        q.put(_Item(0))
        q.put(_Barrier())
        q.put(_Item(1), supersedes=lambda item: isinstance(item, _Barrier))
        assert len(q) == 1
        assert q.coalesced == 1
        assert q.pop().values == [0, 1]
        assert q.unfinished == 1

    def test_barrier_blocks_merge_but_join_sees_all_three(self):
        q = CoalescingQueue()
        q.put(_Item(0))
        q.put(_Barrier())
        q.put(_Item(1))
        assert len(q) == 3
        for _ in range(3):
            q.pop(timeout=1.0)
            q.task_done()
        q.join(time.monotonic() + 1.0)

    def test_close_unblocks_producer_stuck_on_full_queue(self):
        q = CoalescingQueue(maxlen=1)
        q.put(_Barrier())
        finished = threading.Event()

        def producer():
            q.put(_Barrier())  # blocks until close drops it
            finished.set()

        threading.Thread(target=producer, daemon=True).start()
        assert not finished.wait(0.1)
        q.close()
        assert finished.wait(5.0)
        assert len(q) == 0
