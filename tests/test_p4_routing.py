"""An L3 router pipeline: exercises LPM tables, header rewriting, and
select-with-mask parsing through the full behavioral model."""

import pytest

from repro.p4.headers import (
    ETHERTYPE_IPV4,
    EthernetView,
    ethernet,
    ip_to_int,
    ipv4,
    mac_to_int,
)
from repro.p4.ir import compile_p4
from repro.p4.simulator import Simulator
from repro.p4.tables import FieldMatch, TableEntry

ROUTER_P4 = """
header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  tos;
    bit<16> total_len;
    bit<16> identification;
    bit<3>  flags;
    bit<13> frag_offset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> checksum;
    bit<32> src;
    bit<32> dst;
}
struct headers_t { eth_t eth; ipv4_t ip; }
struct meta_t { bit<1> routed; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
         inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.ethertype) {
            0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 { pkt.extract(hdr.ip); transition accept; }
}

control Ing(inout headers_t hdr, inout meta_t m,
            inout standard_metadata_t std) {
    action drop() { mark_to_drop(); }
    action route(bit<48> next_mac, bit<16> port) {
        hdr.eth.src = hdr.eth.dst;
        hdr.eth.dst = next_mac;
        hdr.ip.ttl = hdr.ip.ttl - 1;
        std.egress_spec = port;
    }
    table routes {
        key = { hdr.ip.dst : lpm; }
        actions = { route; drop; }
        default_action = drop();
        size = 1024;
    }
    apply {
        if (hdr.ip.isValid()) {
            if (hdr.ip.ttl == 0) {
                drop();
            } else {
                routes.apply();
            }
        } else {
            drop();
        }
    }
}
"""

NEXT_HOP = "02:00:00:00:00:99"
ROUTER_MAC = "02:00:00:00:00:01"
HOST_MAC = "02:00:00:00:00:02"


@pytest.fixture()
def router():
    sim = Simulator(compile_p4(ROUTER_P4), n_ports=4)
    sim.table("routes").insert(
        TableEntry(
            [FieldMatch.lpm(ip_to_int("10.1.0.0"), 16)],
            "route",
            [mac_to_int(NEXT_HOP), 2],
        )
    )
    sim.table("routes").insert(
        TableEntry(
            [FieldMatch.lpm(ip_to_int("10.1.2.0"), 24)],
            "route",
            [mac_to_int(NEXT_HOP), 3],
        )
    )
    return sim


def packet(dst_ip, ttl=64):
    return ethernet(
        ROUTER_MAC,
        HOST_MAC,
        ethertype=ETHERTYPE_IPV4,
        payload=ipv4("10.0.0.1", dst_ip, ttl=ttl, payload=b"data"),
    )


class TestRouting:
    def test_longest_prefix_wins(self, router):
        ((port, _),) = router.inject(0, packet("10.1.2.9"))
        assert port == 3  # /24 beats /16
        ((port, _),) = router.inject(0, packet("10.1.9.9"))
        assert port == 2

    def test_no_route_drops(self, router):
        assert router.inject(0, packet("192.168.0.1")) == []

    def test_mac_rewrite_and_ttl_decrement(self, router):
        ((_, out),) = router.inject(0, packet("10.1.2.9", ttl=10))
        view = EthernetView(out)
        assert view.dst == NEXT_HOP
        assert view.src == ROUTER_MAC  # old dst becomes src
        # TTL is at offset 8 of the IPv4 header.
        assert view.payload[8] == 9

    def test_ttl_zero_dropped(self, router):
        assert router.inject(0, packet("10.1.2.9", ttl=0)) == []

    def test_non_ip_dropped(self, router):
        frame = ethernet(ROUTER_MAC, HOST_MAC, ethertype=0x0806, payload=b"\0" * 28)
        assert router.inject(0, frame) == []

    def test_payload_preserved(self, router):
        ((_, out),) = router.inject(0, packet("10.1.0.5"))
        assert out.endswith(b"data")


class TestSelectWithMask:
    P4 = """
    header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
    struct headers_t { eth_t eth; }
    struct meta_t { bit<1> x; }
    parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
             inout standard_metadata_t std) {
        state start {
            pkt.extract(hdr.eth);
            transition select(hdr.eth.ethertype) {
                0x8000 &&& 0xF000: high;
                default: accept;
            }
        }
        state high { transition reject; }
    }
    control C(inout headers_t hdr, inout meta_t m,
              inout standard_metadata_t std) {
        apply { std.egress_spec = 1; }
    }
    """

    def test_masked_select(self):
        sim = Simulator(compile_p4(self.P4), n_ports=4)
        # ethertype 0x8abc matches 0x8000/0xF000 -> rejected by parser.
        rejected = ethernet("02:00:00:00:00:01", "02:00:00:00:00:02",
                            ethertype=0x8ABC)
        assert sim.inject(0, rejected) == []
        accepted = ethernet("02:00:00:00:00:01", "02:00:00:00:00:02",
                            ethertype=0x0800)
        assert len(sim.inject(0, accepted)) == 1
