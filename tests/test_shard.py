"""Unit tests for `repro.dlog.shard`: partition analysis, routing
stability, worker lifecycles, checkpoint compatibility, and the obs
instrumentation of the sharded facade.

The end-to-end correctness story (sharded vs single-shard vs full
recompute, under hypothesis-generated programs) lives in
``test_differential.py``; this file pins the mechanisms.
"""

import pickle

import pytest

from repro import obs
from repro.dlog import compile_program
from repro.dlog.shard import (
    PARTITIONED,
    REPLICATED,
    ShardedRuntime,
    analyze,
    shard_for,
)
from repro.dlog.shard.worker import ProcessWorker, make_worker
from repro.errors import TransactionError

JOIN_SRC = """
input relation Port(port: bigint, vlan: bigint)
input relation Trunk(vlan: bigint, uplink: bigint)
output relation InVlan(port: bigint, vlan: bigint)
output relation Uplinked(port: bigint, uplink: bigint)
InVlan(p, v) :- Port(p, v).
Uplinked(p, u) :- Port(p, v), Trunk(v, u).
"""

CLOSURE_SRC = """
input relation Edge(src: bigint, dst: bigint)
output relation Reach(src: bigint, dst: bigint)
Reach(a, b) :- Edge(a, b).
Reach(a, c) :- Reach(a, b), Edge(b, c).
"""

NEG_SRC = """
input relation Port(port: bigint, vlan: bigint)
input relation Blocked(port: bigint)
output relation Active(port: bigint, vlan: bigint)
Active(p, v) :- Port(p, v), not Blocked(p).
"""

AGG_SRC = """
input relation Port(port: bigint, vlan: bigint)
output relation VlanSize(vlan: bigint, n: bigint)
VlanSize(v, n) :- Port(p, v), var n = Aggregate((v), count()).
"""

GLOBAL_AGG_SRC = """
input relation Port(port: bigint, vlan: bigint)
output relation Total(n: bigint)
Total(n) :- Port(p, v), var n = Aggregate((), count()).
"""


class TestPartitionAnalysis:
    def test_equi_join_co_partitions_on_the_link_column(self):
        plan = analyze(compile_program(JOIN_SRC))
        assert plan.status("Port") == (PARTITIONED, 1)
        assert plan.status("Trunk") == (PARTITIONED, 0)

    def test_head_carrying_partition_var_stays_partitioned(self):
        plan = analyze(compile_program(JOIN_SRC))
        # InVlan(p, v) carries the key variable v at position 1.
        assert plan.status("InVlan") == (PARTITIONED, 1)

    def test_non_key_closed_recursion_demotes_to_broadcast(self):
        plan = analyze(compile_program(CLOSURE_SRC))
        assert plan.is_replicated("Edge")
        assert plan.is_replicated("Reach")
        assert plan.notes  # the demotion explains itself

    def test_negation_co_partitions_when_keys_align(self):
        plan = analyze(compile_program(NEG_SRC))
        assert plan.status("Port") == (PARTITIONED, 0)
        assert plan.status("Blocked") == (PARTITIONED, 0)

    def test_aggregate_keyed_by_partition_var_is_shard_local(self):
        plan = analyze(compile_program(AGG_SRC))
        assert plan.status("Port") == (PARTITIONED, 1)
        assert plan.status("VlanSize") == (PARTITIONED, 0)

    def test_global_aggregate_forces_broadcast(self):
        plan = analyze(compile_program(GLOBAL_AGG_SRC))
        assert plan.is_replicated("Port")
        assert any("aggregate" in note for note in plan.notes)

    def test_explain_names_every_relation(self):
        text = analyze(compile_program(JOIN_SRC)).explain()
        for rel in ("Port", "Trunk", "InVlan", "Uplinked"):
            assert rel in text


class TestRouting:
    def test_shard_for_is_stable_across_processes(self):
        """The routing hash must not be Python's salted ``hash()``:
        a row's delete (possibly after restore into a new process) must
        land on the shard holding its insert."""
        import subprocess
        import sys

        values = [0, 17, "vlan-7", (1, "x"), 3.5, True]
        here = [shard_for(v, 8) for v in values]
        code = (
            "from repro.dlog.shard import shard_for\n"
            f"print([shard_for(v, 8) for v in {values!r}])\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "random"},
        )
        assert eval(out.stdout) == here

    def test_partitioned_rows_route_to_one_shard(self):
        plan = analyze(compile_program(JOIN_SRC))
        owner = plan.route("Port", (1, 10), 4)
        assert owner == shard_for(10, 4)

    def test_replicated_rows_broadcast(self):
        plan = analyze(compile_program(CLOSURE_SRC))
        assert plan.route("Edge", (1, 2), 4) is None


class TestShardedRuntimeFacade:
    def test_rejects_zero_shards(self):
        program = compile_program(JOIN_SRC)
        with pytest.raises(ValueError):
            ShardedRuntime(program, shards=0)

    def test_unknown_worker_kind_rejected(self):
        program = compile_program(JOIN_SRC)
        with pytest.raises(ValueError, match="unknown shard_workers"):
            ShardedRuntime(program, shards=2, workers="thread")

    def test_non_input_relation_rejected_before_dispatch(self):
        program = compile_program(JOIN_SRC)
        sharded = ShardedRuntime(program, shards=2, workers="inline")
        try:
            with pytest.raises(TransactionError, match="InVlan"):
                sharded.transaction(inserts={"InVlan": [(1, 2)]})
        finally:
            sharded.close()

    def test_duplicate_and_absent_warnings_match_single_engine(self):
        program = compile_program(JOIN_SRC)
        single = program.start()
        sharded = ShardedRuntime(program, shards=3, workers="inline")
        changes = {
            "inserts": {"Port": [(1, 10), (1, 10)]},
            "deletes": {"Trunk": [(99, 99)]},
        }
        try:
            expect = single.transaction(**changes)
            got = sharded.transaction(**changes)
            assert expect.warnings == got.warnings
            assert len(got.warnings) == 2
        finally:
            sharded.close()

    def test_untouched_shards_are_skipped(self):
        """A transaction only visits shards that received rows."""
        program = compile_program(JOIN_SRC)
        sharded = ShardedRuntime(program, shards=4, workers="inline")
        try:
            sharded.transaction(inserts={"Port": [(1, 10)]})
            counts = [
                w._runtime.txn_count for w in sharded._workers
            ]
            # Every worker ran the initial transaction; exactly one saw
            # the single keyed row.
            assert sorted(counts) == [1, 1, 1, 2]
        finally:
            sharded.close()

    def test_start_shards_knob_returns_facade(self):
        program = compile_program(JOIN_SRC)
        runtime = program.start(shards=2, shard_workers="inline")
        try:
            assert isinstance(runtime, ShardedRuntime)
            assert runtime.shards == 2
        finally:
            runtime.close()

    def test_state_size_and_profile_aggregate_all_shards(self):
        program = compile_program(JOIN_SRC)
        sharded = ShardedRuntime(program, shards=2, workers="inline")
        try:
            sharded.transaction(
                inserts={"Port": [(1, 10), (2, 20)], "Trunk": [(10, 5)]}
            )
            assert sharded.state_size() > 0
            profile = sharded.profile()
            assert profile["shards"] == 2
            assert len(profile["per_shard"]) == 2
            assert "partitioned" in profile["plan"]
        finally:
            sharded.close()


MODIFY_SRC = """
input relation Cfg(u: string, port: bigint, out: bigint)
output relation Patch(port: bigint, out: bigint)
Patch(p, o) :- Cfg(_, p, o).
"""


class TestMergeOrdering:
    """A merged delta must be a well-formed stream: retractions before
    insertions.  The device fan-out's two-slot cells cancel a pending
    insert when a delete for the same match key follows it, so an
    insert-first interleaving from a cross-shard modify silently
    dropped the new row (regression: stale device entries under churn
    through a uuid-partitioned input)."""

    @staticmethod
    def _uuid_on_shard(shard, shards=2):
        for i in range(1000):
            u = f"row-{i}"
            if shard_for(u, shards) == shard:
                return u
        raise AssertionError("no uuid found")

    def test_cross_shard_modify_emits_delete_before_insert(self):
        program = compile_program(MODIFY_SRC)
        plan = analyze(program)
        assert plan.statuses["Cfg"] == (PARTITIONED, 0)  # premise
        # Old row lives on shard 1, its replacement on shard 0, so the
        # un-ordered merge would emit the insert (shard 0 reports
        # first) ahead of the delete.
        old_u = self._uuid_on_shard(1)
        new_u = self._uuid_on_shard(0)
        sharded = ShardedRuntime(program, shards=2, workers="inline")
        try:
            sharded.transaction(inserts={"Cfg": [(old_u, 1, 5)]})
            result = sharded.transaction(
                inserts={"Cfg": [(new_u, 1, 7)]},
                deletes={"Cfg": [(old_u, 1, 5)]},
            )
            assert list(result.deltas["Patch"].data.items()) == [
                ((1, 5), -1),
                ((1, 7), 1),
            ]
        finally:
            sharded.close()

    def test_partitioned_passthrough_is_also_ordered(self):
        program = compile_program(MODIFY_SRC)
        old_u = self._uuid_on_shard(1)
        new_u = self._uuid_on_shard(0)
        sharded = ShardedRuntime(program, shards=2, workers="inline")
        try:
            sharded.transaction(inserts={"Cfg": [(old_u, 1, 5)]})
            result = sharded.transaction(
                inserts={"Cfg": [(new_u, 1, 7)]},
                deletes={"Cfg": [(old_u, 1, 5)]},
            )
            weights = list(result.deltas["Cfg"].data.values())
            assert weights == sorted(weights)  # all -1s, then all +1s
        finally:
            sharded.close()


class TestShardedCheckpoints:
    def _checkpointed(self, shards=2):
        program = compile_program(JOIN_SRC)
        sharded = ShardedRuntime(program, shards=shards, workers="inline")
        sharded.transaction(
            inserts={"Port": [(1, 10), (2, 20)], "Trunk": [(10, 5)]}
        )
        snapshot = sharded.checkpoint()
        sharded.close()
        return program, snapshot

    def test_checkpoint_keyed_by_shard_id_and_count(self):
        program, snapshot = self._checkpointed()
        assert snapshot["sharded"] is True
        assert snapshot["shard_count"] == 2
        for shard_id, entry in enumerate(snapshot["shards"]):
            assert entry["shard_id"] == shard_id
            assert entry["shard_count"] == 2
            assert entry["program_hash"] == program.program_hash

    def test_checkpoint_is_picklable(self):
        _, snapshot = self._checkpointed()
        assert pickle.loads(pickle.dumps(snapshot))["shard_count"] == 2

    def test_restore_matching_count(self):
        program, snapshot = self._checkpointed()
        resumed = ShardedRuntime(
            program, shards=2, workers="inline", checkpoint=snapshot
        )
        try:
            assert resumed.restored
            assert resumed.dump("Uplinked") == {(1, 5)}
        finally:
            resumed.close()

    def test_shard_count_change_degrades_to_cold_start(self):
        program, snapshot = self._checkpointed(shards=2)
        resumed = ShardedRuntime(
            program, shards=4, workers="inline", checkpoint=snapshot
        )
        try:
            assert not resumed.restored
            assert resumed.dump("Port") == set()
        finally:
            resumed.close()

    def test_single_runtime_rejects_sharded_bundle(self):
        program, snapshot = self._checkpointed()
        runtime = program.start(checkpoint=snapshot)
        assert not runtime.restored

    def test_sharded_rejects_single_engine_checkpoint(self):
        program = compile_program(JOIN_SRC)
        single = program.start()
        single.transaction(inserts={"Port": [(1, 10)]})
        snapshot = single.checkpoint()
        sharded = ShardedRuntime(
            program, shards=2, workers="inline", checkpoint=snapshot
        )
        try:
            assert not sharded.restored
        finally:
            sharded.close()

    def test_program_change_degrades_to_cold_start(self):
        _, snapshot = self._checkpointed()
        other = compile_program(JOIN_SRC + "\n// changed\n")
        resumed = ShardedRuntime(
            other, shards=2, workers="inline", checkpoint=snapshot
        )
        try:
            assert not resumed.restored
        finally:
            resumed.close()


class TestProcessWorkers:
    def test_worker_round_trip_and_close(self):
        program = compile_program(JOIN_SRC)
        worker = ProcessWorker(program, shard_id=0, checkpoint=None)
        try:
            assert worker.ready["restored"] is False
            worker.submit("txn", {"Port": [(1, 10)]}, {})
            result = worker.result()
            assert result["deltas"]["Port"] == {(1, 10): 1}
            worker.submit("dump", "InVlan")
            assert worker.result() == {(1, 10)}
        finally:
            worker.close()
        assert not worker._proc.is_alive()

    def test_errors_propagate_from_child(self):
        program = compile_program(JOIN_SRC)
        worker = ProcessWorker(program, shard_id=0, checkpoint=None)
        try:
            worker.submit("dump", "NoSuchRelation")
            with pytest.raises(KeyError):
                worker.result()
            # The worker survives a failed request.
            worker.submit("state_size")
            assert worker.result() == 0
        finally:
            worker.close()

    def test_process_falls_back_to_inline_without_source(self):
        program = compile_program(JOIN_SRC)
        program.source_text = None
        kind, worker = make_worker("process", program, 0, None)
        try:
            assert kind == "inline"
        finally:
            worker.close()

    def test_close_is_idempotent(self):
        program = compile_program(JOIN_SRC)
        sharded = ShardedRuntime(program, shards=2, workers="process")
        sharded.close()
        sharded.close()


class TestShardObservability:
    pytestmark = pytest.mark.serial  # enables/resets the global obs registry

    def test_exchange_counters_and_stage_timings(self):
        program = compile_program(JOIN_SRC)
        obs.enable()
        try:
            sharded = ShardedRuntime(program, shards=2, workers="inline")
            try:
                sharded.transaction(
                    inserts={"Port": [(1, 10), (2, 20)], "Trunk": [(10, 5)]}
                )
                snap = obs.REGISTRY.snapshot()
                assert snap["counters"]["shard_exchange_rows_total"] == 3
                assert snap["counters"]["shard_txns_total"] == 1
                hists = snap["histograms"]
                for stage in ("route", "eval", "merge"):
                    assert (
                        hists[f"shard_stage_{stage}_seconds"]["count"] == 1
                    )
                gauges = snap["gauges"]
                assert 'shard_queue_depth{shard="0"}' in gauges
            finally:
                sharded.close()
        finally:
            obs.disable()
            obs.reset()

    def test_broadcast_counter_counts_replicated_fanout(self):
        program = compile_program(CLOSURE_SRC)
        obs.enable()
        try:
            sharded = ShardedRuntime(program, shards=4, workers="inline")
            try:
                sharded.transaction(inserts={"Edge": [(1, 2), (2, 3)]})
                snap = obs.REGISTRY.snapshot()
                assert snap["counters"]["shard_broadcast_rows_total"] == 8
                assert (
                    snap["counters"].get("shard_exchange_rows_total", 0)
                    == 0
                )
            finally:
                sharded.close()
        finally:
            obs.disable()
            obs.reset()
