"""Tests for the P4Runtime-style API, in-process and over TCP."""

import threading

import pytest

from repro.errors import RuntimeApiError
from repro.p4.headers import ethernet, mac_to_int
from repro.p4.ir import compile_p4
from repro.p4.simulator import Simulator
from repro.p4.tables import FieldMatch, TableEntry
from repro.p4runtime.api import DeviceService, TableWrite, WriteError
from repro.p4runtime.client import P4RuntimeClient
from repro.p4runtime.server import P4RuntimeServer

from tests.test_p4_program import SWITCH_P4


@pytest.fixture()
def sim():
    s = Simulator(compile_p4(SWITCH_P4), n_ports=8)
    s.set_multicast_group(1, list(range(8)))
    return s


@pytest.fixture()
def service(sim):
    return DeviceService(sim)


def vlan_write(port, vid=10, kind="INSERT"):
    return TableWrite(
        kind, "in_vlan", TableEntry([FieldMatch.exact(port)], "set_vlan", [vid])
    )


class TestDeviceService:
    def test_write_insert(self, service, sim):
        assert service.write([vlan_write(1)]) == 1
        assert len(sim.table("in_vlan")) == 1

    def test_write_batch_atomic_rollback(self, service, sim):
        service.write([vlan_write(1)])
        with pytest.raises(WriteError) as excinfo:
            service.write(
                [
                    vlan_write(2),
                    vlan_write(1),  # duplicate -> fails
                ]
            )
        assert excinfo.value.index == 1
        # First update rolled back: only the original entry remains.
        assert len(sim.table("in_vlan")) == 1

    def test_modify(self, service, sim):
        service.write([vlan_write(1, vid=10)])
        service.write([vlan_write(1, vid=20, kind="MODIFY")])
        assert sim.table("in_vlan").lookup([1])[1] == (20,)

    def test_delete(self, service, sim):
        service.write([vlan_write(1)])
        service.write([vlan_write(1, kind="DELETE")])
        assert len(sim.table("in_vlan")) == 0

    def test_modify_rollback_restores_old(self, service, sim):
        service.write([vlan_write(1, vid=10)])
        with pytest.raises(WriteError):
            service.write(
                [
                    vlan_write(1, vid=30, kind="MODIFY"),
                    vlan_write(9999, kind="DELETE"),  # fails
                ]
            )
        assert sim.table("in_vlan").lookup([1])[1] == (10,)

    def test_write_unknown_table(self, service):
        bad = TableWrite(
            "INSERT", "nonesuch", TableEntry([FieldMatch.exact(1)], "x", [])
        )
        with pytest.raises(WriteError):
            service.write([bad])

    def test_wire_round_trip(self):
        write = TableWrite(
            "INSERT",
            "t",
            TableEntry(
                [
                    FieldMatch.exact(5),
                    FieldMatch.lpm(10, 8),
                    FieldMatch.ternary(3, 255),
                ],
                "act",
                [1, 2],
                priority=7,
            ),
        )
        back = TableWrite.from_wire(write.to_wire())
        assert back.to_wire() == write.to_wire()

    def test_bad_wire_rejected(self):
        with pytest.raises(RuntimeApiError):
            TableWrite.from_wire({"type": "INSERT"})

    def test_p4info_exposed(self, service):
        info = service.p4info()
        assert {t["name"] for t in info["tables"]} == {
            "in_vlan",
            "learned",
            "fwd",
        }


@pytest.fixture()
def rt_server(sim):
    server = P4RuntimeServer(sim).start()
    yield server
    server.stop()


@pytest.fixture()
def rt_client(rt_server):
    host, port = rt_server.address
    with P4RuntimeClient(host, port) as client:
        yield client


class TestRemote:
    def test_get_p4info(self, rt_client):
        info = rt_client.get_p4info()
        assert {t["name"] for t in info["tables"]} == {
            "in_vlan",
            "learned",
            "fwd",
        }

    def test_write_and_read(self, rt_client):
        rt_client.write([vlan_write(3, vid=77)])
        entries = rt_client.read_table("in_vlan")
        assert len(entries) == 1
        assert entries[0].entry.action_params == (77,)

    def test_write_error_propagates(self, rt_client):
        rt_client.write([vlan_write(3)])
        with pytest.raises(RuntimeApiError):
            rt_client.write([vlan_write(3)])

    def test_inject_and_outputs(self, rt_client):
        for port in range(8):
            rt_client.write([vlan_write(port)])
        outputs = rt_client.inject(
            1, ethernet("aa:00:00:00:00:02", "aa:00:00:00:00:01")
        )
        assert sorted(p for p, _ in outputs) == [0, 2, 3, 4, 5, 6, 7]

    def test_digest_subscription(self, rt_client):
        received = []
        event = threading.Event()

        def on_digest(name, values):
            received.append((name, values))
            event.set()

        rt_client.subscribe_digests(on_digest)
        rt_client.write([vlan_write(1)])
        rt_client.inject(1, ethernet("aa:00:00:00:00:02", "aa:00:00:00:00:01"))
        assert event.wait(5.0), "digest never arrived"
        name, values = received[0]
        assert name == "mac_learn_t"
        assert values[0] == mac_to_int("aa:00:00:00:00:01")
        assert values[1] == 1

    def test_multicast_group_config(self, rt_client, sim):
        rt_client.set_multicast_group(2, [1, 2, 3])
        assert sim.multicast_groups[2] == [1, 2, 3]
        rt_client.delete_multicast_group(2)
        assert 2 not in sim.multicast_groups

    def test_default_action_config(self, rt_client, sim):
        rt_client.set_default_action("fwd", "flood", [])
        assert sim.table("fwd").default_action == "flood"


class TestPacketIO:
    """Remote packet-in/out: the CPU punt path over the wire."""

    PUNT_P4 = """
    header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
    struct headers_t { eth_t eth; }
    struct meta_t { bit<1> x; }
    parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
             inout standard_metadata_t std) {
        state start { pkt.extract(hdr.eth); transition accept; }
    }
    control Ing(inout headers_t hdr, inout meta_t m,
                inout standard_metadata_t std) {
        action forward(bit<16> port) { std.egress_spec = port; }
        table fwd {
            key = { std.ingress_port : exact; }
            actions = { forward; NoAction; }
            default_action = forward(510);
        }
        apply { fwd.apply(); }
    }
    """

    def test_remote_packet_in_and_out(self):
        sim = Simulator(compile_p4(self.PUNT_P4), n_ports=8, cpu_port=510)
        with P4RuntimeServer(sim) as server:
            with P4RuntimeClient(*server.address) as client:
                received = []
                event = threading.Event()
                client.subscribe_packet_ins(
                    lambda port, data: (received.append((port, data)),
                                        event.set())
                )
                frame = ethernet("02:00:00:00:00:01", "02:00:00:00:00:02")
                # No entry for port 1: default punts to the CPU port.
                outputs = client.inject(1, frame)
                assert outputs == []
                assert event.wait(5.0), "packet-in never arrived"
                assert received[0] == (1, frame)

                # packet_out with a concrete route: egresses normally.
                client.write(
                    [
                        TableWrite.insert(
                            "fwd",
                            TableEntry([FieldMatch.exact(2)], "forward", [3]),
                        )
                    ]
                )
                outputs = client.packet_out(2, frame)
                assert [p for p, _ in outputs] == [3]
