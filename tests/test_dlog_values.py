"""Value interning invariants and dataflow-core fast paths.

The fast dataflow core leans on three micro-invariants that are easy to
break silently during refactors, so each gets a direct unit test here:

* :class:`StructValue`/:class:`MapValue` are hash-consed — equal values
  are the *same object* within a process, and pickling re-interns;
* :meth:`ZSet.merge` into an empty receiver copies wholesale (and stays
  semantically identical to the per-record path);
* :class:`Arrangement` maintains its running record counter so
  ``total_records`` is O(1) and always matches a full recount.
"""

import gc
import pickle

from repro.dlog.dataflow.arrangement import Arrangement
from repro.dlog.dataflow.zset import ZSet
from repro.dlog.values import NONE, MapValue, StructValue, some


class TestStructInterning:
    def test_equal_structs_are_identical(self):
        assert StructValue("Pair", (1, 2)) is StructValue("Pair", (1, 2))

    def test_distinct_structs_are_distinct(self):
        assert StructValue("Pair", (1, 2)) is not StructValue("Pair", (1, 3))
        assert StructValue("A", (1,)) is not StructValue("B", (1,))

    def test_nested_structs_intern(self):
        inner = StructValue("Inner", (7,))
        outer = StructValue("Outer", (inner, "x"))
        assert outer is StructValue("Outer", (StructValue("Inner", (7,)), "x"))

    def test_option_helpers_intern(self):
        assert some(5) is some(5)
        assert StructValue("None", ()) is NONE

    def test_pickle_round_trip_reinterns(self):
        value = StructValue("Pair", (1, some(2)))
        assert pickle.loads(pickle.dumps(value)) is value

    def test_identity_implies_and_is_implied_by_equality(self):
        a = StructValue("P", (1, "x"))
        b = StructValue("P", (1, "x"))
        assert a == b and a is b and hash(a) == hash(b)

    def test_weak_table_does_not_pin(self):
        marker = StructValue("Transient", (id(object()),))
        key = (marker.constructor, marker.fields)
        del marker
        gc.collect()
        from repro.dlog.values import _struct_intern

        assert _struct_intern.get(key) is None

    def test_immutability_guard(self):
        value = StructValue("P", (1,))
        try:
            value.fields = (2,)
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("StructValue must be immutable")


class TestMapInterning:
    def test_equal_maps_are_identical(self):
        assert MapValue([(1, "a"), (2, "b")]) is MapValue([(2, "b"), (1, "a")])

    def test_insert_remove_results_intern(self):
        base = MapValue([(1, "a")])
        grown = base.insert(2, "b")
        assert grown is MapValue([(1, "a"), (2, "b")])
        assert grown.remove(2) is base

    def test_pickle_round_trip_reinterns(self):
        value = MapValue([(1, some(1)), (2, NONE)])
        assert pickle.loads(pickle.dumps(value)) is value


class TestZSetMergeFastPath:
    def test_empty_receiver_copies_wholesale(self):
        source = ZSet({"a": 2, "b": -1})
        empty = ZSet()
        empty.merge(source)
        assert empty == source
        # The copy must be by-value: mutating the receiver afterwards
        # must not reach back into the source.
        empty.add("a", 1)
        assert source.weight("a") == 2

    def test_fast_path_matches_slow_path(self):
        source = ZSet({"a": 2, "b": -1, "c": 3})
        fast = ZSet()
        fast.merge(source)
        slow = ZSet()
        for record, weight in source.items():
            slow.add(record, weight)
        assert fast == slow

    def test_merge_cancellation_still_drops_zeros(self):
        left = ZSet({"a": 2})
        left.merge(ZSet({"a": -2, "b": 1}))
        assert "a" not in left and left.weight("b") == 1


class TestArrangementCounter:
    @staticmethod
    def _recount(arr):
        return sum(len(group) for _, group in arr.items())

    def test_counter_tracks_update(self):
        arr = Arrangement()
        arr.update(ZSet({(1, "x"): 1, (2, "y"): 1, (1, "z"): 1}), lambda r: r[0])
        assert arr.total_records() == self._recount(arr) == 3
        # Retract one record, cancel it exactly.
        arr.update(ZSet({(1, "x"): -1}), lambda r: r[0])
        assert arr.total_records() == self._recount(arr) == 2
        # Weight changes on a surviving record don't change the count.
        arr.update(ZSet({(2, "y"): 3}), lambda r: r[0])
        assert arr.total_records() == self._recount(arr) == 2

    def test_counter_after_bulk_build(self):
        arr = Arrangement()
        arr.build(ZSet({(k % 3, k): 1 for k in range(10)}), lambda r: r[0])
        assert arr.total_records() == self._recount(arr) == 10
