"""Tests for workload generators, the Fig. 3 model, and the OpenFlow
lowering (p4c-of analog)."""

import pytest

from repro.apps.ovn_model import RELEASES, correlation, simulate_growth
from repro.p4.ir import compile_p4
from repro.p4.openflow import OFSwitch, compile_to_openflow, instantiate_entries
from repro.p4.simulator import Simulator
from repro.p4.tables import FieldMatch, TableEntry
from repro.workloads.churn import robotron_churn
from repro.workloads.loadbalancer import LoadBalancerWorkload
from repro.workloads.ports import port_add_stream
from repro.workloads.topology import fat_tree, random_graph

from tests.test_p4_program import SWITCH_P4


class TestTopology:
    def test_fat_tree_structure(self):
        k = 4
        edges = fat_tree(k)
        # k=4: 4 core, 4 pods x (2 agg + 2 edge).  Each agg: 2 core
        # links + 2 edge links, bidirectional.
        assert len(edges) == 2 * (k * (k // 2) * (k // 2) * 2)
        nodes = {n for e in edges for n in e}
        assert len(nodes) == (k // 2) ** 2 + k * k

    def test_fat_tree_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(3)

    def test_random_graph_connected(self):
        edges = random_graph(50, 120, seed=1)
        # Every node reachable from 0 by construction.
        adjacency = {}
        for a, b in edges:
            adjacency.setdefault(a, []).append(b)
        seen = {0}
        stack = [0]
        while stack:
            for succ in adjacency.get(stack.pop(), ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        assert seen == set(range(50))

    def test_random_graph_deterministic(self):
        assert random_graph(20, 40, seed=5) == random_graph(20, 40, seed=5)


class TestChurn:
    def test_event_count_and_mix(self):
        events = list(robotron_churn(100, 8, 500, seed=2))
        assert len(events) == 500
        kinds = {e.kind for e in events}
        assert kinds <= {"add_port", "del_port", "retag_port", "move_port"}
        updates = sum(1 for e in events if e.kind in ("retag_port", "move_port"))
        assert updates > 250  # updates dominate, per the Robotron mix

    def test_deterministic(self):
        a = [(e.kind, e.port) for e in robotron_churn(50, 4, 100, seed=9)]
        b = [(e.kind, e.port) for e in robotron_churn(50, 4, 100, seed=9)]
        assert a == b

    def test_lines_follow_parameter(self):
        events = list(robotron_churn(100, 8, 300, seed=1, lines_per_change=150))
        mean_lines = sum(e.lines for e in events) / len(events)
        assert 100 < mean_lines < 200  # the paper's "over 150 lines" scale


class TestPortStream:
    def test_round_robin_vlans(self):
        pairs = list(port_add_stream(10, n_vlans=3))
        assert pairs[0] == (0, 1)
        assert pairs[3] == (3, 1)
        assert len(pairs) == 10


class TestLoadBalancerWorkload:
    def test_shapes(self):
        w = LoadBalancerWorkload(n_lbs=5, backends_per_lb=10, n_switches=4)
        vips, attach = w.cold_start_rows()
        assert len(vips) == 50
        assert len(attach) == 20
        assert w.derived_entries == 200
        batches = list(w.deletion_batches())
        assert len(batches) == 5


class TestOvnModel:
    def test_monotone_growth(self):
        points = simulate_growth()
        assert len(points) == len(RELEASES)
        locs = [p.imperative_loc for p in points]
        frags = [p.fragments for p in points]
        assert locs == sorted(locs)
        assert frags == sorted(frags)

    def test_loc_and_fragments_grow_together(self):
        points = simulate_growth()
        r = correlation(
            [float(p.imperative_loc) for p in points],
            [float(p.fragments) for p in points],
        )
        assert r > 0.97  # Fig. 3's "grown at a similar rate"

    def test_nerpa_stays_an_order_of_magnitude_smaller(self):
        final = simulate_growth()[-1]
        assert final.imperative_loc / final.nerpa_loc >= 8

    def test_superlinear_imperative_vs_linear_nerpa(self):
        points = simulate_growth()
        # Imperative LoC per feature grows over time (interaction cost);
        # Nerpa LoC per feature stays near-flat.
        first, mid, last = points[0], points[len(points) // 2], points[-1]
        imp_rate_early = (mid.imperative_loc - first.imperative_loc) / (
            mid.n_features - first.n_features
        )
        imp_rate_late = (last.imperative_loc - mid.imperative_loc) / (
            last.n_features - mid.n_features
        )
        assert imp_rate_late > imp_rate_early * 1.1
        nerpa_rate_early = (mid.nerpa_loc - first.nerpa_loc) / (
            mid.n_features - first.n_features
        )
        nerpa_rate_late = (last.nerpa_loc - mid.nerpa_loc) / (
            last.n_features - mid.n_features
        )
        assert nerpa_rate_late < nerpa_rate_early * 1.5  # near-flat

    def test_deterministic(self):
        a = [p.as_dict() for p in simulate_growth(seed=7)]
        b = [p.as_dict() for p in simulate_growth(seed=7)]
        assert a == b


class TestOpenFlowLowering:
    @pytest.fixture()
    def pipeline(self):
        return compile_p4(SWITCH_P4)

    def test_fragment_per_table_action(self, pipeline):
        program = compile_to_openflow(pipeline)
        # in_vlan{set_vlan,drop}, learned{NoAction,learn},
        # fwd{forward,flood} = 6 fragments.
        assert program.fragment_count == 6
        assert set(program.table_ids) == {"in_vlan", "learned", "fwd"}

    def test_instantiate_and_execute(self, pipeline):
        sim = Simulator(pipeline, n_ports=8)
        sim.table("in_vlan").insert(
            TableEntry([FieldMatch.exact(1)], "set_vlan", [10])
        )
        sim.table("fwd").insert(
            TableEntry(
                [FieldMatch.exact(10), FieldMatch.exact(0xAA)], "forward", [3]
            )
        )
        program = compile_to_openflow(pipeline)
        rules = instantiate_entries(program, sim.tables)
        switch = OFSwitch(rules)
        trace = switch.process(
            {
                "std.ingress_port": 1,
                "meta.vlan": 10,
                "hdr.eth.src": 0xBB,
                "hdr.eth.dst": 0xAA,
            }
        )
        actions = [name for name, _ in trace]
        assert "set_vlan" in actions
        assert ("forward", (3,)) in trace

    def test_default_actions_present_as_low_priority(self, pipeline):
        sim = Simulator(pipeline, n_ports=8)
        program = compile_to_openflow(pipeline)
        rules = instantiate_entries(program, sim.tables)
        switch = OFSwitch(rules)
        trace = switch.process(
            {
                "std.ingress_port": 5,
                "meta.vlan": 0,
                "hdr.eth.src": 1,
                "hdr.eth.dst": 2,
            }
        )
        # in_vlan default drop fires; learned default learn; fwd flood.
        assert ("drop", ()) in trace

    def test_priority_ordering(self, pipeline):
        sim = Simulator(pipeline, n_ports=8)
        sim.table("in_vlan").insert(
            TableEntry([FieldMatch.exact(1)], "set_vlan", [10])
        )
        program = compile_to_openflow(pipeline)
        rules = instantiate_entries(program, sim.tables)
        switch = OFSwitch(rules)
        trace = switch.process(
            {
                "std.ingress_port": 1,
                "meta.vlan": 0,
                "hdr.eth.src": 1,
                "hdr.eth.dst": 2,
            }
        )
        # The concrete entry must beat the default drop.
        assert trace[0] == ("set_vlan", (10,))
