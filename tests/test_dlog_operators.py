"""Unit and property tests for the incremental dataflow operators.

The key property throughout: feeding deltas one at a time produces the
same accumulated output as feeding their sum at once, and both equal
the non-incremental recomputation over the accumulated input.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dlog.dataflow.operators import (
    AggregateNode,
    AntiJoinNode,
    DistinctNode,
    FilterNode,
    FlatMapNode,
    JoinNode,
    MapNode,
    UnionNode,
)
from repro.dlog.dataflow.zset import ZSet


def z(*pairs):
    out = ZSet()
    for record, weight in pairs:
        out.add(record, weight)
    return out


class TestLinearOperators:
    def test_map(self):
        node = MapNode(lambda r: r * 10)
        out = node.process([z((1, 1), (2, -2))])
        assert out == z((10, 1), (20, -2))

    def test_filter(self):
        node = FilterNode(lambda r: r % 2 == 0)
        out = node.process([z((1, 1), (2, 1), (4, -1))])
        assert out == z((2, 1), (4, -1))

    def test_flatmap(self):
        node = FlatMapNode(lambda r: range(r))
        out = node.process([z((2, 1), (3, -1))])
        assert out == z((0, 1), (1, 1), (0, -1), (1, -1), (2, -1))

    def test_union(self):
        node = UnionNode(3)
        out = node.process([z(("a", 1)), z(("a", 1), ("b", -1)), None])
        assert out == z(("a", 2), ("b", -1))

    def test_map_merges_collisions(self):
        node = MapNode(lambda r: r % 2)
        out = node.process([z((1, 1), (3, 1), (5, -2))])
        assert out == z((1, 0)) == ZSet()


class TestDistinct:
    def test_first_insert_emits_plus_one(self):
        node = DistinctNode()
        assert node.process([z(("a", 3))]) == z(("a", 1))

    def test_duplicate_support_is_silent(self):
        node = DistinctNode()
        node.process([z(("a", 1))])
        assert node.process([z(("a", 1))]) == ZSet()

    def test_removal_of_last_support_emits_minus_one(self):
        node = DistinctNode()
        node.process([z(("a", 2))])
        assert node.process([z(("a", -1))]) == ZSet()
        assert node.process([z(("a", -1))]) == z(("a", -1))

    def test_multi_port_sums_before_distinct(self):
        node = DistinctNode(n_ports=2)
        out = node.process([z(("a", 1)), z(("a", -1))])
        assert out == ZSet()

    @given(
        st.lists(
            st.lists(st.tuples(st.integers(0, 3), st.integers(-2, 2)), max_size=6),
            max_size=8,
        )
    )
    def test_incremental_equals_recompute(self, batches):
        node = DistinctNode()
        accumulated_in = ZSet()
        accumulated_out = ZSet()
        for batch in batches:
            delta = z(*batch)
            accumulated_in.merge(delta)
            accumulated_out.merge(node.process([delta]))
        assert accumulated_out == accumulated_in.positive_part()


def _join_reference(left, right):
    """Non-incremental reference join on first tuple element."""
    out = ZSet()
    for lrow, lw in left.items():
        for rrow, rw in right.items():
            if lrow[0] == rrow[0]:
                out.add((lrow, rrow), lw * rw)
    return out


small_zsets = st.lists(
    st.tuples(st.tuples(st.integers(0, 3), st.integers(0, 3)), st.integers(-2, 2)),
    max_size=6,
)


class TestJoin:
    def _node(self):
        return JoinNode(
            left_key=lambda row: row[0],
            right_key=lambda row: row[0],
            merge=lambda a, b: (a, b),
        )

    def test_simple_join(self):
        node = self._node()
        out = node.process([z(((1, "l"), 1)), z(((1, "r"), 1))])
        assert out == z((((1, "l"), (1, "r")), 1))

    def test_no_match_no_output(self):
        node = self._node()
        out = node.process([z(((1, "l"), 1)), z(((2, "r"), 1))])
        assert out == ZSet()

    def test_late_arrival_joins_against_state(self):
        node = self._node()
        node.process([z(((1, "l"), 1)), None])
        out = node.process([None, z(((1, "r"), 1))])
        assert out == z((((1, "l"), (1, "r")), 1))

    def test_deletion_retracts_join_result(self):
        node = self._node()
        node.process([z(((1, "l"), 1)), z(((1, "r"), 1))])
        out = node.process([z(((1, "l"), -1)), None])
        assert out == z((((1, "l"), (1, "r")), -1))

    def test_merge_returning_none_drops_pair(self):
        node = JoinNode(
            left_key=lambda row: row[0],
            right_key=lambda row: row[0],
            merge=lambda a, b: None if b[1] == "skip" else (a, b),
        )
        out = node.process([z(((1, "l"), 1)), z(((1, "skip"), 1), ((1, "ok"), 1))])
        assert out == z((((1, "l"), (1, "ok")), 1))

    @settings(max_examples=60)
    @given(st.lists(st.tuples(small_zsets, small_zsets), max_size=6))
    def test_incremental_equals_recompute(self, batches):
        node = self._node()
        left_acc, right_acc, out_acc = ZSet(), ZSet(), ZSet()
        for lbatch, rbatch in batches:
            dl, dr = z(*lbatch), z(*rbatch)
            left_acc.merge(dl)
            right_acc.merge(dr)
            out_acc.merge(node.process([dl, dr]))
        assert out_acc == _join_reference(left_acc, right_acc)


class TestAntiJoin:
    def _node(self):
        return AntiJoinNode(left_key=lambda row: row[0])

    def test_passes_when_right_absent(self):
        node = self._node()
        assert node.process([z(((1, "a"), 1)), None]) == z(((1, "a"), 1))

    def test_blocked_when_right_present(self):
        node = self._node()
        assert node.process([z(((1, "a"), 1)), z((1, 1))]) == ZSet()

    def test_right_insert_retracts_existing_left(self):
        node = self._node()
        node.process([z(((1, "a"), 1)), None])
        out = node.process([None, z((1, 1))])
        assert out == z(((1, "a"), -1))

    def test_right_delete_releases_left(self):
        node = self._node()
        node.process([z(((1, "a"), 1)), z((1, 1))])
        out = node.process([None, z((1, -1))])
        assert out == z(((1, "a"), 1))

    def test_multiple_right_support(self):
        node = self._node()
        node.process([z(((1, "a"), 1)), z((1, 2))])
        assert node.process([None, z((1, -1))]) == ZSet()
        assert node.process([None, z((1, -1))]) == z(((1, "a"), 1))

    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(
                small_zsets,
                st.lists(st.tuples(st.integers(0, 3), st.integers(-2, 2)), max_size=5),
            ),
            max_size=6,
        )
    )
    def test_incremental_equals_recompute(self, batches):
        node = self._node()
        left_acc, right_acc, out_acc = ZSet(), ZSet(), ZSet()
        for lbatch, rbatch in batches:
            dl, dr = z(*lbatch), z(*rbatch)
            left_acc.merge(dl)
            right_acc.merge(dr)
            out_acc.merge(node.process([dl, dr]))
        expected = ZSet()
        present = {k for k, w in right_acc.items() if w > 0}
        for record, weight in left_acc.items():
            if record[0] not in present:
                expected.add(record, weight)
        assert out_acc == expected


class TestAggregate:
    def _node(self, fold):
        # records are (key, value) pairs
        return AggregateNode(
            key_fn=lambda r: (r[0],),
            args_fn=lambda r: (r[1],),
            fold=fold,
        )

    def test_count(self):
        node = self._node(lambda rows: len(rows))
        out = node.process([z((("k", 1), 1), (("k", 2), 1))])
        assert out == z((("k", 2), 1))

    def test_update_retracts_old_value(self):
        node = self._node(lambda rows: len(rows))
        node.process([z((("k", 1), 1))])
        out = node.process([z((("k", 2), 1))])
        assert out == z((("k", 1), -1), (("k", 2), 1))

    def test_group_disappears(self):
        node = self._node(lambda rows: len(rows))
        node.process([z((("k", 1), 1))])
        out = node.process([z((("k", 1), -1))])
        assert out == z((("k", 1), -1))

    def test_sum(self):
        node = self._node(lambda rows: sum(r[0] for r in rows))
        out = node.process([z((("k", 3), 1), (("k", 4), 2))])
        assert out == z((("k", 11), 1))

    def test_unaffected_groups_untouched(self):
        calls = []

        def fold(rows):
            calls.append(rows)
            return len(rows)

        node = self._node(fold)
        node.process([z((("a", 1), 1), (("b", 1), 1))])
        calls.clear()
        node.process([z((("a", 2), 1))])
        # Only group "a" re-aggregated (once pre-delta, once post-delta);
        # group "b" is never folded again.
        assert all(r == (1,) or r == (2,) for rows in calls for r in rows)
        assert len(calls) == 2

    @settings(max_examples=60)
    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.tuples(st.integers(0, 2), st.integers(0, 3)),
                    st.integers(-1, 2),
                ),
                max_size=5,
            ),
            max_size=6,
        ).filter(
            # Keep accumulated multiplicities non-negative per record.
            lambda batches: all(
                sum(
                    w
                    for batch in batches[: i + 1]
                    for rec, w in batch
                    if rec == target
                )
                >= 0
                for i, _ in enumerate(batches)
                for target in {rec for batch in batches for rec, _ in batch}
            )
        )
    )
    def test_incremental_equals_recompute(self, batches):
        node = self._node(lambda rows: sum(r[0] for r in rows))
        acc_in, acc_out = ZSet(), ZSet()
        for batch in batches:
            delta = z(*batch)
            acc_in.merge(delta)
            acc_out.merge(node.process([delta]))
        expected = ZSet()
        groups = {}
        for (key, value), weight in acc_in.items():
            groups.setdefault(key, []).extend([value] * weight)
        for key, values in groups.items():
            if values:
                expected.add(((key,) + (sum(values),)), 1)
        assert acc_out == expected
