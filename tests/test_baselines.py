"""Tests for the hand-written baselines — and cross-checks that they
agree with the declarative engine (the baselines must be *correct* for
the benchmark comparisons to mean anything)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.full_recompute import FullRecomputeController
from repro.baselines.imperative import ChangeEngine, ImperativeSnvs
from repro.baselines.lb_controller import HandWrittenLbController
from repro.baselines.reachability import (
    IncrementalReachability,
    NaiveReachability,
)
from repro.dlog import compile_program
from repro.workloads.loadbalancer import LB_DLOG_PROGRAM, LoadBalancerWorkload

LABEL_PROGRAM = """
input relation GivenLabel(n: bigint, label: string)
input relation Edge(a: bigint, b: bigint)
output relation Label(n: bigint, label: string)
Label(n, l) :- GivenLabel(n, l).
Label(b, l) :- Label(a, l), Edge(a, b).
"""


class TestReachabilityBaselines:
    def _check_agreement(self, script):
        naive = NaiveReachability()
        incremental = IncrementalReachability()
        engine = compile_program(LABEL_PROGRAM).start()
        edges, givens = set(), set()
        for op, payload in script:
            if op == "edge":
                a, b = payload
                if (a, b) in edges:
                    edges.discard((a, b))
                    naive.remove_edge(a, b)
                    incremental.remove_edge(a, b)
                    engine.transaction(deletes={"Edge": [(a, b)]})
                else:
                    edges.add((a, b))
                    naive.add_edge(a, b)
                    incremental.add_edge(a, b)
                    engine.transaction(inserts={"Edge": [(a, b)]})
            else:
                n, lab = payload
                if (n, lab) in givens:
                    givens.discard((n, lab))
                    naive.remove_given(n, lab)
                    incremental.remove_given(n, lab)
                    engine.transaction(deletes={"GivenLabel": [(n, lab)]})
                else:
                    givens.add((n, lab))
                    naive.add_given(n, lab)
                    incremental.add_given(n, lab)
                    engine.transaction(inserts={"GivenLabel": [(n, lab)]})
            assert incremental.labels == naive.labels
            assert engine.dump("Label") == naive.labels

    def test_basic_propagation(self):
        inc = IncrementalReachability()
        inc.add_given(1, "x")
        inc.add_edge(1, 2)
        inc.add_edge(2, 3)
        assert inc.labels == {(1, "x"), (2, "x"), (3, "x")}

    def test_cycle_deletion(self):
        inc = IncrementalReachability()
        inc.add_given(1, "x")
        inc.add_edge(1, 2)
        inc.add_edge(2, 3)
        inc.add_edge(3, 2)
        inc.remove_edge(1, 2)
        assert inc.labels == {(1, "x")}

    def test_alternative_path_survives(self):
        inc = IncrementalReachability()
        inc.add_given(1, "x")
        inc.add_edge(1, 2)
        inc.add_edge(1, 3)
        inc.add_edge(2, 3)
        inc.remove_edge(2, 3)
        assert (3, "x") in inc.labels

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("edge"),
                    st.tuples(st.integers(0, 5), st.integers(0, 5)),
                ),
                st.tuples(
                    st.just("given"),
                    st.tuples(st.integers(0, 5), st.sampled_from("ab")),
                ),
            ),
            max_size=15,
        )
    )
    def test_all_three_agree_on_random_scripts(self, script):
        self._check_agreement(script)

    def test_incremental_does_less_work_on_insert(self):
        rng = random.Random(3)
        edges = [(rng.randrange(200), rng.randrange(200)) for _ in range(400)]
        naive = NaiveReachability()
        incremental = IncrementalReachability()
        naive.add_given(0, "x")
        incremental.add_given(0, "x")
        for a, b in edges:
            naive.add_edge(a, b)
            incremental.add_edge(a, b)
        naive.work_counter = 0
        incremental.work_counter = 0
        naive.add_edge(198, 199)
        incremental.add_edge(198, 199)
        assert incremental.work_counter < naive.work_counter / 5


class TestChangeEngine:
    def test_handlers_fire_per_event(self):
        engine = ChangeEngine()
        engine.declare("T")
        events = []
        engine.on_change("T", lambda t, row, ins: events.append((row, ins)))
        engine.insert("T", (1,))
        engine.delete("T", (1,))
        assert events == [((1,), True), ((1,), False)]

    def test_duplicate_insert_ignored(self):
        engine = ChangeEngine()
        engine.declare("T")
        events = []
        engine.on_change("T", lambda t, row, ins: events.append(row))
        engine.insert("T", (1,))
        engine.insert("T", (1,))
        assert len(events) == 1


class TestImperativeSnvs:
    def _setup(self):
        snvs = ImperativeSnvs()
        snvs.engine.insert("Vlan", (10,))
        snvs.engine.insert("Port", (0, "access", 10, ()))
        snvs.engine.insert("Port", (1, "access", 10, ()))
        snvs.engine.insert("Port", (2, "trunk", 10, (10, 20)))
        return snvs

    def test_port_classification(self):
        snvs = self._setup()
        assert len(snvs.in_vlan) == 4  # 3 untagged + 1 trunk-tagged(10)
        assert len(snvs.out_tag) == 3

    def test_vlan_declared_later_cascades(self):
        snvs = self._setup()
        before = len(snvs.in_vlan)
        snvs.engine.insert("Vlan", (20,))
        assert len(snvs.in_vlan) == before + 1  # trunk vid 20 now valid
        assert snvs.mcast[20] == {2}

    def test_multicast_membership(self):
        snvs = self._setup()
        assert snvs.mcast[10] == {0, 1, 2}

    def test_port_removal(self):
        snvs = self._setup()
        snvs.engine.delete("Port", (1, "access", 10, ()))
        assert snvs.mcast[10] == {0, 2}
        assert all(e[0] != 1 for e in snvs.in_vlan)

    def test_mac_learning_and_move(self):
        snvs = self._setup()
        snvs.engine.insert("MacLearned", (10, 0xAA, 0))
        assert snvs.fwd[(10, 0xAA)] == 0
        snvs.engine.insert("MacLearned", (10, 0xAA, 1))  # station moves
        assert snvs.fwd[(10, 0xAA)] == 1
        snvs.engine.delete("MacLearned", (10, 0xAA, 1))
        assert snvs.fwd[(10, 0xAA)] == 0

    def test_agrees_with_declarative_on_multicast(self):
        """The imperative multicast membership must equal what the
        declarative snvs rules derive for the same configuration."""
        from repro.apps.snvs import SnvsNetwork

        net = SnvsNetwork(n_ports=8)
        snvs = ImperativeSnvs()
        for vid in (10, 20):
            net.add_vlan(vid)
            snvs.engine.insert("Vlan", (vid,))
        net.add_access_port(0, vlan=10)
        snvs.engine.insert("Port", (0, "access", 10, ()))
        net.add_trunk_port(1, native_vlan=10, trunks=[20])
        snvs.engine.insert("Port", (1, "trunk", 10, (20,)))
        declared = {
            g: set(ports) for g, ports in net.switch.multicast_groups.items()
        }
        assert declared == {g: set(p) for g, p in snvs.mcast.items()}


class TestLbBaseline:
    def test_cold_start_counts(self):
        workload = LoadBalancerWorkload(n_lbs=3, backends_per_lb=4, n_switches=2)
        controller = HandWrittenLbController()
        vips, attach = workload.cold_start_rows()
        added = controller.cold_start(vips, attach)
        assert added == workload.derived_entries == 3 * 4 * 2

    def test_delete_removes_only_that_lb(self):
        workload = LoadBalancerWorkload(n_lbs=3, backends_per_lb=4, n_switches=2)
        controller = HandWrittenLbController()
        controller.cold_start(*workload.cold_start_rows())
        controller.delete_lb(0)
        assert len(controller.entries) == 2 * 4 * 2

    def test_agrees_with_engine(self):
        workload = LoadBalancerWorkload(n_lbs=4, backends_per_lb=5, n_switches=3)
        controller = HandWrittenLbController()
        engine = compile_program(LB_DLOG_PROGRAM).start()
        vips, attach = workload.cold_start_rows()
        controller.cold_start(vips, attach)
        engine.transaction(inserts={"LbVip": vips, "LbSwitch": attach})
        assert engine.dump("NatEntry") == controller.entries
        for lb, vip_rows, attach_rows in workload.deletion_batches():
            controller.delete_lb(lb)
            engine.transaction(
                deletes={"LbVip": vip_rows, "LbSwitch": attach_rows}
            )
            assert engine.dump("NatEntry") == controller.entries


class TestFullRecompute:
    def test_diffs_against_installed(self):
        def derive(config):
            return {
                (a, c)
                for a, b1 in config.get("A", set())
                for b2, c in config.get("B", set())
                if b1 == b2
            }

        controller = FullRecomputeController(derive)
        added, removed = controller.apply_change(
            inserts={"A": [(1, 2)], "B": [(2, 3)]}
        )
        assert added == {(1, 3)} and not removed
        added, removed = controller.apply_change(deletes={"B": [(2, 3)]})
        assert removed == {(1, 3)} and not added
        assert controller.recompute_count == 2
