"""Tests for the P4 subset parser, compiler, tables, and simulator."""

import pytest

from repro.errors import DataPlaneError, ParseError, RuntimeApiError
from repro.p4.headers import ethernet, mac_to_int
from repro.p4.ir import compile_p4
from repro.p4.parser import parse_p4
from repro.p4.simulator import Simulator
from repro.p4.tables import FieldMatch, TableEntry, TableState

# A small L2 switch: VLAN assignment on ingress port, MAC learning via
# digest, L2 forwarding with flood fallback.
SWITCH_P4 = """
header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> ethertype;
}

struct headers_t {
    ethernet_t eth;
}

struct metadata_t {
    bit<12> vlan;
    bit<1>  flood;
}

struct mac_learn_t {
    bit<48> mac;
    bit<16>  port;
    bit<12> vlan;
}

parser MyParser(packet_in pkt, out headers_t hdr, inout metadata_t meta,
                inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        transition accept;
    }
}

control MyIngress(inout headers_t hdr, inout metadata_t meta,
                  inout standard_metadata_t std) {
    action drop() { mark_to_drop(); }
    action set_vlan(bit<12> vid) { meta.vlan = vid; }
    action learn() {
        digest(mac_learn_t, {hdr.eth.src, std.ingress_port, meta.vlan});
    }
    action forward(bit<16> port) { std.egress_spec = port; }
    action flood() { std.mcast_grp = 1; }

    table in_vlan {
        key = { std.ingress_port : exact; }
        actions = { set_vlan; drop; }
        default_action = drop();
        size = 512;
    }
    table learned {
        key = { meta.vlan : exact; hdr.eth.src : exact; }
        actions = { NoAction; learn; }
        default_action = learn();
    }
    table fwd {
        key = { meta.vlan : exact; hdr.eth.dst : exact; }
        actions = { forward; flood; }
        default_action = flood();
    }
    apply {
        in_vlan.apply();
        learned.apply();
        fwd.apply();
    }
}

control MyEgress(inout headers_t hdr, inout metadata_t meta,
                 inout standard_metadata_t std) {
    apply {
        if (std.egress_port == std.ingress_port) {
            mark_to_drop();
        }
    }
}
"""


@pytest.fixture()
def pipeline():
    return compile_p4(SWITCH_P4)


@pytest.fixture()
def sim(pipeline):
    s = Simulator(pipeline, n_ports=8)
    s.set_multicast_group(1, list(range(8)))
    for port in range(8):
        s.table("in_vlan").insert(
            TableEntry([FieldMatch.exact(port)], "set_vlan", [10])
        )
    return s


def frame(dst, src):
    return ethernet(dst, src, payload=b"payload")


class TestParsing:
    def test_program_structure(self):
        prog = parse_p4(SWITCH_P4)
        assert set(prog.headers) == {"ethernet_t"}
        assert set(prog.structs) == {"headers_t", "metadata_t", "mac_learn_t"}
        assert len(prog.parsers) == 1
        assert list(prog.controls) == ["MyIngress", "MyEgress"]

    def test_table_properties(self):
        prog = parse_p4(SWITCH_P4)
        table = prog.controls["MyIngress"].tables["in_vlan"]
        assert table.size == 512
        assert table.default_action == "drop"
        assert [k.match_kind for k in table.keys] == ["exact"]

    def test_select_parser(self):
        prog = parse_p4(
            """
            header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
            header vlan_t { bit<3> pcp; bit<1> dei; bit<12> vid; bit<16> ethertype; }
            struct headers_t { eth_t eth; vlan_t vlan; }
            struct meta_t { bit<1> pad; }
            parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
                     inout standard_metadata_t std) {
                state start {
                    pkt.extract(hdr.eth);
                    transition select(hdr.eth.ethertype) {
                        0x8100: parse_vlan;
                        default: accept;
                    }
                }
                state parse_vlan { pkt.extract(hdr.vlan); transition accept; }
            }
            control C(inout headers_t hdr, inout meta_t m,
                      inout standard_metadata_t std) {
                apply { }
            }
            """
        )
        parser = next(iter(prog.parsers.values()))
        assert set(parser.states) == {"start", "parse_vlan"}

    def test_missing_start_state_rejected(self):
        with pytest.raises(ParseError, match="start"):
            parse_p4(
                """
                struct h_t { bit<8> x; }
                parser P(packet_in pkt, out h_t hdr) {
                    state other { transition accept; }
                }
                """
            )

    def test_missing_apply_rejected(self):
        with pytest.raises(ParseError, match="apply"):
            parse_p4(
                """
                struct h_t { bit<8> x; }
                control C(inout h_t hdr) { action a() { } }
                """
            )


class TestCompile:
    def test_p4info_tables(self, pipeline):
        info = pipeline.p4info
        assert set(info.tables) == {"in_vlan", "learned", "fwd"}
        fwd = info.table("fwd")
        assert [f.width for f in fwd.match_fields] == [12, 48]
        assert fwd.default_action == "flood"

    def test_p4info_digest(self, pipeline):
        digest = pipeline.p4info.digests["mac_learn_t"]
        assert [f.name for f in digest.fields] == ["mac", "port", "vlan"]
        assert [f.width for f in digest.fields] == [48, 16, 12]

    def test_p4info_action_params(self, pipeline):
        fwd = pipeline.p4info.action("forward")
        assert [p.width for p in fwd.params] == [16]

    def test_unknown_field_rejected(self):
        bad = SWITCH_P4.replace("hdr.eth.dst", "hdr.eth.nonesuch")
        with pytest.raises(DataPlaneError, match="nonesuch"):
            compile_p4(bad)

    def test_unknown_action_in_table_rejected(self):
        bad = SWITCH_P4.replace("actions = { forward; flood; }",
                                "actions = { forward; missing_action; }")
        with pytest.raises(DataPlaneError, match="missing_action"):
            compile_p4(bad)

    def test_digest_field_count_mismatch(self):
        bad = SWITCH_P4.replace(
            "{hdr.eth.src, std.ingress_port, meta.vlan}",
            "{hdr.eth.src, std.ingress_port}",
        )
        with pytest.raises(DataPlaneError, match="digest"):
            compile_p4(bad)


class TestTableState:
    def _info(self, kinds, widths):
        from repro.p4.p4info import ActionParam, MatchField, P4Info

        info = P4Info()
        info.add_action("act", [ActionParam("p", 16)])
        return info.add_table(
            "t",
            [MatchField(f"k{i}", w, k) for i, (k, w) in enumerate(zip(kinds, widths))],
            ["act"],
            None,
            1024,
        )

    def test_exact_lookup(self):
        state = TableState(self._info(["exact"], [16]))
        state.insert(TableEntry([FieldMatch.exact(5)], "act", [9]))
        assert state.lookup([5]) == ("act", (9,), True)
        assert state.lookup([6]) == (None, (), False)

    def test_lpm_longest_prefix_wins(self):
        state = TableState(self._info(["lpm"], [32]))
        state.insert(TableEntry([FieldMatch.lpm(0x0A000000, 8)], "act", [1]))
        state.insert(TableEntry([FieldMatch.lpm(0x0A010000, 16)], "act", [2]))
        assert state.lookup([0x0A010203])[1] == (2,)
        assert state.lookup([0x0A990203])[1] == (1,)
        assert state.lookup([0x0B000000])[0] is None

    def test_lpm_default_route(self):
        state = TableState(self._info(["lpm"], [32]))
        state.insert(TableEntry([FieldMatch.lpm(0, 0)], "act", [99]))
        assert state.lookup([0xDEADBEEF])[1] == (99,)

    def test_ternary_priority(self):
        state = TableState(self._info(["ternary"], [8]))
        state.insert(
            TableEntry([FieldMatch.ternary(0x80, 0x80)], "act", [1], priority=10)
        )
        state.insert(
            TableEntry([FieldMatch.ternary(0xFF, 0xFF)], "act", [2], priority=20)
        )
        assert state.lookup([0xFF])[1] == (2,)
        assert state.lookup([0x81])[1] == (1,)
        assert state.lookup([0x01])[0] is None

    def test_ternary_requires_priority(self):
        state = TableState(self._info(["ternary"], [8]))
        with pytest.raises(RuntimeApiError, match="priority"):
            state.insert(TableEntry([FieldMatch.ternary(1, 1)], "act", [1]))

    def test_duplicate_entry_rejected(self):
        state = TableState(self._info(["exact"], [8]))
        state.insert(TableEntry([FieldMatch.exact(1)], "act", [1]))
        with pytest.raises(RuntimeApiError, match="duplicate"):
            state.insert(TableEntry([FieldMatch.exact(1)], "act", [2]))

    def test_modify_and_delete(self):
        state = TableState(self._info(["exact"], [8]))
        state.insert(TableEntry([FieldMatch.exact(1)], "act", [1]))
        state.modify(TableEntry([FieldMatch.exact(1)], "act", [7]))
        assert state.lookup([1])[1] == (7,)
        state.delete(TableEntry([FieldMatch.exact(1)], "act", []))
        assert state.lookup([1])[0] is None

    def test_delete_missing_rejected(self):
        state = TableState(self._info(["exact"], [8]))
        with pytest.raises(RuntimeApiError):
            state.delete(TableEntry([FieldMatch.exact(1)], "act", []))

    def test_value_out_of_range_rejected(self):
        state = TableState(self._info(["exact"], [8]))
        with pytest.raises(RuntimeApiError, match="range"):
            state.insert(TableEntry([FieldMatch.exact(256)], "act", [1]))

    def test_capacity_enforced(self):
        from repro.p4.p4info import ActionParam, MatchField, P4Info

        info = P4Info()
        info.add_action("act", [])
        tinfo = info.add_table(
            "t", [MatchField("k", 8, "exact")], ["act"], None, 2
        )
        state = TableState(tinfo)
        state.insert(TableEntry([FieldMatch.exact(1)], "act", []))
        state.insert(TableEntry([FieldMatch.exact(2)], "act", []))
        with pytest.raises(RuntimeApiError, match="full"):
            state.insert(TableEntry([FieldMatch.exact(3)], "act", []))

    def test_mixed_exact_lpm(self):
        state = TableState(self._info(["exact", "lpm"], [12, 32]))
        state.insert(
            TableEntry(
                [FieldMatch.exact(10), FieldMatch.lpm(0x0A000000, 8)], "act", [5]
            )
        )
        assert state.lookup([10, 0x0A123456])[1] == (5,)
        assert state.lookup([11, 0x0A123456])[0] is None


class TestSimulator:
    A = "aa:00:00:00:00:01"
    B = "aa:00:00:00:00:02"

    def test_unknown_dst_floods_except_ingress(self, sim):
        outputs = sim.inject(1, frame(self.B, self.A))
        ports = sorted(p for p, _ in outputs)
        assert ports == [0, 2, 3, 4, 5, 6, 7]  # egress drops hairpin

    def test_digest_emitted_for_unknown_src(self, sim):
        sim.inject(1, frame(self.B, self.A))
        digests = sim.drain_digests()
        assert len(digests) == 1
        assert digests[0].name == "mac_learn_t"
        assert digests[0].values == (mac_to_int(self.A), 1, 10)

    def test_known_dst_unicast(self, sim):
        # Control plane installs what learning would produce.
        sim.table("fwd").insert(
            TableEntry(
                [FieldMatch.exact(10), FieldMatch.exact(mac_to_int(self.B))],
                "forward",
                [2],
            )
        )
        outputs = sim.inject(1, frame(self.B, self.A))
        assert [p for p, _ in outputs] == [2]

    def test_learned_entry_suppresses_digest(self, sim):
        sim.table("learned").insert(
            TableEntry(
                [FieldMatch.exact(10), FieldMatch.exact(mac_to_int(self.A))],
                "NoAction",
                [],
            )
        )
        sim.inject(1, frame(self.B, self.A))
        assert sim.drain_digests() == []

    def test_unconfigured_port_drops(self, pipeline):
        s = Simulator(pipeline, n_ports=8)  # no in_vlan entries: default drop
        assert s.inject(3, frame(self.B, self.A)) == []
        assert s.dropped == 1

    def test_packet_bytes_preserved(self, sim):
        sim.table("fwd").insert(
            TableEntry(
                [FieldMatch.exact(10), FieldMatch.exact(mac_to_int(self.B))],
                "forward",
                [2],
            )
        )
        original = frame(self.B, self.A)
        ((_, out),) = sim.inject(1, original)
        assert out == original  # this program does not rewrite headers

    def test_short_packet_rejected_by_parser(self, sim):
        assert sim.inject(1, b"\x01\x02") == []

    def test_stats(self, sim):
        sim.inject(1, frame(self.B, self.A))
        stats = sim.stats()
        assert stats["rx"][1] == 1
        assert stats["tables"]["in_vlan"] == 8

    def test_bad_port_rejected(self, sim):
        with pytest.raises(DataPlaneError):
            sim.inject(99, frame(self.B, self.A))


class TestVlanRewrite:
    """A pipeline that pushes/strips 802.1Q tags exercises header
    validity manipulation and deparsing."""

    P4 = """
    header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
    header vlan_t { bit<3> pcp; bit<1> dei; bit<12> vid; bit<16> ethertype; }
    struct headers_t { eth_t eth; vlan_t vlan; }
    struct meta_t { bit<12> vlan; }

    parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
             inout standard_metadata_t std) {
        state start {
            pkt.extract(hdr.eth);
            transition select(hdr.eth.ethertype) {
                0x8100: parse_vlan;
                default: accept;
            }
        }
        state parse_vlan { pkt.extract(hdr.vlan); transition accept; }
    }

    control Ing(inout headers_t hdr, inout meta_t m,
                inout standard_metadata_t std) {
        action out_tagged(bit<16> port, bit<12> vid) {
            hdr.vlan.setValid();
            hdr.vlan.ethertype = hdr.eth.ethertype;
            hdr.eth.ethertype = 0x8100;
            hdr.vlan.vid = vid;
            hdr.vlan.pcp = 0;
            hdr.vlan.dei = 0;
            std.egress_spec = port;
        }
        action out_untagged(bit<16> port) {
            if (hdr.vlan.isValid()) {
                hdr.eth.ethertype = hdr.vlan.ethertype;
                hdr.vlan.setInvalid();
            }
            std.egress_spec = port;
        }
        table out_port {
            key = { std.ingress_port : exact; }
            actions = { out_tagged; out_untagged; }
            default_action = out_untagged(0);
        }
        apply { out_port.apply(); }
    }
    """

    def test_push_tag(self):
        sim = Simulator(compile_p4(self.P4), n_ports=4)
        sim.table("out_port").insert(
            TableEntry([FieldMatch.exact(1)], "out_tagged", [2, 99])
        )
        plain = ethernet("aa:00:00:00:00:02", "aa:00:00:00:00:01", payload=b"zz")
        ((port, out),) = sim.inject(1, plain)
        assert port == 2
        from repro.p4.headers import EthernetView

        view = EthernetView(out)
        assert view.vlan == 99
        assert view.payload == b"zz"

    def test_strip_tag(self):
        sim = Simulator(compile_p4(self.P4), n_ports=4)
        sim.table("out_port").insert(
            TableEntry([FieldMatch.exact(1)], "out_untagged", [3])
        )
        tagged = ethernet(
            "aa:00:00:00:00:02", "aa:00:00:00:00:01", vlan=55, payload=b"zz"
        )
        ((port, out),) = sim.inject(1, tagged)
        assert port == 3
        from repro.p4.headers import EthernetView

        view = EthernetView(out)
        assert view.vlan is None
        assert view.payload == b"zz"
