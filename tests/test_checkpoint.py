"""Warm-start checkpointing tests.

Three layers are covered:

* engine — ``Runtime.checkpoint()`` / ``start(checkpoint=...)`` must be
  semantically invisible: a restored runtime produces byte-identical
  output deltas to one that never checkpointed, over randomized
  insert/delete sequences including joins, negation, and recursion
  (property-based, hypothesis);
* controller — ``NerpaController(state_dir=...)`` warm restart skips
  resync for epoch-matched devices, applies only the delta accumulated
  while it was down, and falls back to cold start when the checkpoint
  is absent or stale;
* persistence — ``Persister.compact()`` must not lose transactions
  that commit between the snapshot and the journal reopen (regression
  for the snapshot/journal race).
"""

import pickle
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.snvs import build_snvs
from repro.core.controller import NerpaController
from repro.dlog.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    CheckpointStore,
    load_checkpoint,
    program_hash,
    replay_segments,
    save_checkpoint,
)
from repro.dlog.engine import compile_program
from repro.errors import ReproError
from repro.mgmt.database import Database
from repro.mgmt.persist import Persister, restore

# A join plus a negation: both arrangement kinds and distinct counts
# carry state across the checkpoint.
JOIN_NEG_PROGRAM = """
input relation R(a: bigint, b: bigint)
input relation S(b: bigint, c: bigint)
output relation J(a: bigint, b: bigint, c: bigint)
output relation OnlyR(a: bigint, b: bigint)
J(a, b, c) :- R(a, b), S(b, c).
OnlyR(a, b) :- R(a, b), not S(b, _).
"""

REACH_PROGRAM = """
input relation Edge(a: bigint, b: bigint)
output relation Reach(x: bigint, y: bigint)
Reach(x, y) :- Edge(x, y).
Reach(x, z) :- Reach(x, y), Edge(y, z).
"""


def _canonical(result):
    """Deltas as canonical bytes — the strongest equality we can ask
    two runtimes for."""
    return pickle.dumps(
        sorted(
            (name, sorted(zset.data.items()))
            for name, zset in result.deltas.items()
        )
    )


def _pairs(lo=0, hi=4):
    return st.lists(
        st.tuples(st.integers(lo, hi), st.integers(lo, hi)), max_size=6
    )


def _batches(relations, min_size=1, max_size=6):
    return st.lists(
        st.fixed_dictionaries(
            {f"{rel}{sign}": _pairs() for rel in relations for sign in "+-"}
        ),
        min_size=min_size,
        max_size=max_size,
    )


def _changes(batch, relations):
    return {
        "inserts": {rel: batch[f"{rel}+"] for rel in relations},
        "deletes": {rel: batch[f"{rel}-"] for rel in relations},
    }


class TestEngineCheckpointDifferential:
    """checkpoint → restore → transact must equal never-checkpointed."""

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(batches=_batches(("R", "S")), data=st.data())
    def test_join_and_negation_deltas_identical(self, batches, data):
        cut = data.draw(st.integers(0, len(batches)), label="cut")
        reference = compile_program(JOIN_NEG_PROGRAM).start()
        subject = compile_program(JOIN_NEG_PROGRAM).start()
        for batch in batches[:cut]:
            changes = _changes(batch, ("R", "S"))
            reference.transaction(**changes)
            subject.transaction(**changes)
        snapshot = pickle.loads(pickle.dumps(subject.checkpoint()))
        restored = compile_program(JOIN_NEG_PROGRAM).start(checkpoint=snapshot)
        assert restored.restored
        for batch in batches[cut:]:
            changes = _changes(batch, ("R", "S"))
            want = reference.transaction(**changes)
            got = restored.transaction(**changes)
            assert _canonical(got) == _canonical(want)
        for rel in ("J", "OnlyR"):
            assert restored.dump(rel) == reference.dump(rel)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(batches=_batches(("Edge",)), data=st.data())
    def test_recursive_deltas_identical(self, batches, data):
        """DRed support-count state must survive the round trip —
        deletions after restore are where stale counts would show."""
        cut = data.draw(st.integers(0, len(batches)), label="cut")
        reference = compile_program(REACH_PROGRAM).start()
        subject = compile_program(REACH_PROGRAM).start()
        for batch in batches[:cut]:
            changes = _changes(batch, ("Edge",))
            reference.transaction(**changes)
            subject.transaction(**changes)
        snapshot = pickle.loads(pickle.dumps(subject.checkpoint()))
        restored = compile_program(REACH_PROGRAM).start(checkpoint=snapshot)
        assert restored.restored
        for batch in batches[cut:]:
            changes = _changes(batch, ("Edge",))
            want = reference.transaction(**changes)
            got = restored.transaction(**changes)
            assert _canonical(got) == _canonical(want)
        assert restored.dump("Reach") == reference.dump("Reach")

    def test_checkpoint_then_delete_inside_cycle(self):
        """Deterministic regression: break a cycle after restoring —
        over-retained DRed state would keep the unreachable pairs."""
        runtime = compile_program(REACH_PROGRAM).start()
        runtime.transaction(
            inserts={"Edge": [(0, 1), (1, 2), (2, 0), (2, 3)]}
        )
        restored = compile_program(REACH_PROGRAM).start(
            checkpoint=runtime.checkpoint()
        )
        runtime.transaction(deletes={"Edge": [(1, 2)]})
        restored.transaction(deletes={"Edge": [(1, 2)]})
        assert restored.dump("Reach") == runtime.dump("Reach")
        assert (0, 3) not in restored.dump("Reach")


class TestCheckpointValidation:
    def test_program_hash_mismatch_falls_back_cold(self):
        runtime = compile_program(JOIN_NEG_PROGRAM).start()
        runtime.transaction(inserts={"R": [(1, 2)]})
        snapshot = runtime.checkpoint()
        other = compile_program(REACH_PROGRAM).start(checkpoint=snapshot)
        assert not other.restored
        assert other.dump("Reach") == set()

    def test_format_mismatch_falls_back_cold(self):
        runtime = compile_program(JOIN_NEG_PROGRAM).start()
        snapshot = runtime.checkpoint()
        snapshot["format"] = CHECKPOINT_FORMAT + 1
        assert not compile_program(JOIN_NEG_PROGRAM).start(
            checkpoint=snapshot
        ).restored

    def test_garbage_checkpoint_falls_back_cold(self):
        runtime = compile_program(JOIN_NEG_PROGRAM).start(
            checkpoint={"nonsense": True}
        )
        assert not runtime.restored
        runtime.transaction(inserts={"R": [(1, 2)]})
        assert runtime.dump("OnlyR") == {(1, 2)}

    def test_hash_distinguishes_source_and_mode(self):
        base = program_hash("x", "dred")
        assert program_hash("y", "dred") != base
        assert program_hash("x", "naive") != base

    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "a.ckpt")
        data = {"format": CHECKPOINT_FORMAT, "payload": [1, 2, 3]}
        size = save_checkpoint(path, data)
        assert size > 0
        assert load_checkpoint(path) == data

    def test_load_missing_returns_none(self, tmp_path):
        assert load_checkpoint(str(tmp_path / "absent.ckpt")) is None

    def test_load_corrupt_raises(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"not a pickle")
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_load_truncated_raises(self, tmp_path):
        path = tmp_path / "cut.ckpt"
        full = pickle.dumps({"format": CHECKPOINT_FORMAT})
        path.write_bytes(full[: len(full) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))


class TestCheckpointStore:
    """Delta chains: full snapshot + append-only journal segments."""

    HASH = "h" * 64

    def _store(self, tmp_path):
        return CheckpointStore(str(tmp_path), "engine.ckpt", self.HASH)

    def test_delta_without_anchor_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            self._store(tmp_path).save_delta([], 0)

    def test_full_then_deltas_round_trip(self, tmp_path):
        store = self._store(tmp_path)
        store.save_full({"format": CHECKPOINT_FORMAT, "n": 3}, 3)
        store.save_delta([{"inserts": {"R": [(1, 2)]}, "deletes": {}}], 4)
        store.save_delta([], 4, meta={"seq": 9})
        full, segments = self._store(tmp_path).load_chain(lambda f: f["n"])
        assert full["n"] == 3
        assert [s["segment"] for s in segments] == [1, 2]
        assert segments[0]["base_txn"] == 3
        assert segments[1]["base_txn"] == 4
        assert segments[1]["meta"] == {"seq": 9}

    def test_save_full_purges_segments(self, tmp_path):
        store = self._store(tmp_path)
        store.save_full({"format": CHECKPOINT_FORMAT}, 1)
        store.save_delta([], 2)
        store.save_full({"format": CHECKPOINT_FORMAT}, 2)
        assert store._segment_paths() == []
        assert store.segments_since_full == 0

    def test_should_full_compaction_cue(self, tmp_path):
        store = self._store(tmp_path)
        assert store.should_full(2)  # unanchored
        store.save_full({"format": CHECKPOINT_FORMAT}, 0)
        assert not store.should_full(2)
        store.save_delta([], 1)
        assert not store.should_full(2)
        store.save_delta([], 2)
        assert store.should_full(2)

    def test_invalid_tail_unlinked(self, tmp_path):
        """A stale or corrupt segment (and everything after it) is
        dropped on load — the self-healing interrupted-compaction path."""
        store = self._store(tmp_path)
        store.save_full({"format": CHECKPOINT_FORMAT}, 1)
        store.save_delta([], 2)
        bad = store._segment_path(2)
        (tmp_path / bad.split("/")[-1]).write_bytes(b"torn write")
        fresh = self._store(tmp_path)
        segments = fresh.load_segments(1)
        assert [s["segment"] for s in segments] == [1]
        assert not (tmp_path / bad.split("/")[-1]).exists()
        # The reloaded store is re-anchored: appending continues.
        fresh.save_delta([], 3)
        assert len(self._store(tmp_path).load_segments(1)) == 2

    def test_hash_mismatch_segment_dropped(self, tmp_path):
        store = self._store(tmp_path)
        store.save_full({"format": CHECKPOINT_FORMAT}, 0)
        store.save_delta([], 1)
        other = CheckpointStore(str(tmp_path), "engine.ckpt", "x" * 64)
        assert other.load_segments(0) == []

    def test_reader_must_not_heal_a_concurrent_writers_chain(self, tmp_path):
        """Regression: a reader (warm-standby follower) racing a writer
        that just compacted sees segments that look stale relative to
        its own anchor.  With ``heal=True`` it would unlink them —
        destroying the *live writer's* chain.  Readers open the store
        with ``heal=False`` and must leave the files alone."""
        writer = self._store(tmp_path)
        writer.save_full({"format": CHECKPOINT_FORMAT, "n": 10}, 10)
        writer.save_delta([], 11)

        reader = CheckpointStore(
            str(tmp_path), "engine.ckpt", self.HASH, heal=False
        )
        full, segments = reader.load_chain(lambda f: f["n"])
        assert full["n"] == 10 and len(segments) == 1

        # The writer compacts and keeps appending: the old chain is
        # gone, segment index 1 now belongs to the *new* chain.
        writer.save_full({"format": CHECKPOINT_FORMAT, "n": 11}, 11)
        writer.save_delta([], 12)
        new_seg = tmp_path / "engine.ckpt.delta-000001.seg"
        assert new_seg.exists()

        # The reader tails from its stale position: the new segment is
        # not contiguous with its anchor, so nothing is replayable —
        # but the file MUST survive the attempt.
        assert reader.load_segments(10, start_index=2) == []
        assert reader.load_segments(10, start_index=1) == []
        assert new_seg.exists(), "reader healed a concurrent writer's chain"

        # The writer's chain is intact: a fresh store loads all of it.
        full, segments = self._store(tmp_path).load_chain(lambda f: f["n"])
        assert full["n"] == 11
        assert [s["segment"] for s in segments] == [1]

    def test_heal_false_keeps_torn_tail_heal_true_removes_it(self, tmp_path):
        writer = self._store(tmp_path)
        writer.save_full({"format": CHECKPOINT_FORMAT, "n": 1}, 1)
        writer.save_delta([], 2)
        torn = tmp_path / "engine.ckpt.delta-000002.seg"
        torn.write_bytes(b"torn write")

        reader = CheckpointStore(
            str(tmp_path), "engine.ckpt", self.HASH, heal=False
        )
        assert [s["segment"] for s in reader.load_segments(1)] == [1]
        assert torn.exists()
        # The chain's writer self-heals on reload, as before.
        assert [s["segment"] for s in self._store(tmp_path).load_segments(1)] == [1]
        assert not torn.exists()

    def test_replay_segments_pins_txn_count(self):
        runtime = compile_program(JOIN_NEG_PROGRAM).start()
        segments = [
            {
                "program_hash": None,
                "txns": [{"inserts": {"R": [(1, 2)]}, "deletes": {}}],
                "txn_count": 7,
            }
        ]
        assert replay_segments(runtime, segments, None) == 1
        assert runtime.txn_count == 7
        assert runtime.dump("R") == {(1, 2)}


def _snvs_config(db, ports):
    db.transact(
        [{"op": "insert", "table": "Vlan", "row": {"vid": 10}}]
        + [
            {
                "op": "insert",
                "table": "Port",
                "row": {
                    "name": f"p{p}",
                    "port_num": p,
                    "vlan_mode": "access",
                    "tag": 10,
                },
            }
            for p in ports
        ]
    )


class TestControllerWarmStart:
    def test_warm_restart_skips_resync_and_writes_nothing(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        first = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        ).start()
        _snvs_config(db, (0, 1))
        first.drain()
        entries = len(switch.table("in_vlan"))
        assert entries == 2
        first.save_checkpoint()
        first.stop()

        second = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        )
        second.start(warm=True)
        second.drain()
        assert second.restart_mode == "warm"
        assert second.warm_skips == 1
        assert second.device_resyncs == 0
        assert second.entries_written == 0
        assert len(switch.table("in_vlan")) == entries
        second.stop()

    def test_warm_restart_applies_only_offline_delta(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        first = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        ).start()
        _snvs_config(db, (0, 1))
        first.drain()
        full_config_writes = first.entries_written
        first.save_checkpoint()
        first.stop()
        # A change lands while the controller is down.
        db.transact(
            [
                {
                    "op": "insert",
                    "table": "Port",
                    "row": {
                        "name": "p2",
                        "port_num": 2,
                        "vlan_mode": "access",
                        "tag": 10,
                    },
                }
            ]
        )

        second = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        )
        second.start(warm=True)
        second.drain()
        assert second.restart_mode == "warm"
        assert second.warm_skips == 1
        # Only the new port's entries were shipped, not the full config.
        assert 0 < second.entries_written < full_config_writes
        assert len(switch.table("in_vlan")) == 3
        second.stop()

    def test_epoch_mismatch_forces_resync(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        first = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        ).start()
        _snvs_config(db, (0, 1))
        first.drain()
        first.save_checkpoint()
        first.stop()
        # Device restarted (or was written to) behind our back.
        switch.config_epoch = "ep-someone-else"

        second = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        )
        second.start(warm=True)
        second.drain()
        assert second.restart_mode == "warm"
        assert second.warm_skips == 0
        assert second.device_resyncs == 1
        assert len(switch.table("in_vlan")) == 2
        second.stop()

    def test_missing_checkpoint_falls_back_cold(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        _snvs_config(db, (0, 1))
        controller = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        )
        controller.start(warm=True)
        controller.drain()
        assert controller.restart_mode == "cold"
        assert len(switch.table("in_vlan")) == 2
        controller.stop()

    def test_corrupt_checkpoint_falls_back_cold(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        _snvs_config(db, (0, 1))
        (tmp_path / "controller.ckpt").write_bytes(b"\x80garbage")
        controller = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        )
        controller.start(warm=True)
        controller.drain()
        assert controller.restart_mode == "cold"
        assert len(switch.table("in_vlan")) == 2
        controller.stop()

    def test_save_checkpoint_requires_state_dir(self):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        controller = NerpaController(project, db, [switch]).start()
        with pytest.raises(ReproError):
            controller.save_checkpoint()
        controller.stop()

    def test_restart_metrics_exposed(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        first = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        ).start()
        _snvs_config(db, (0,))
        first.drain()
        first.save_checkpoint()
        assert first.checkpoint_bytes > 0
        assert first.checkpoint_seconds >= 0.0
        first.stop()
        second = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        )
        second.start(warm=True)
        restart = second.metrics()["restart"]
        assert restart["mode"] == "warm"
        assert restart["start_seconds"] > 0.0
        second.stop()


class TestControllerDeltaCheckpoint:
    def test_auto_mode_full_then_delta(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        controller = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        ).start()
        _snvs_config(db, (0, 1))
        controller.drain()
        controller.save_checkpoint()
        assert controller.last_checkpoint_mode == "full"
        full_bytes = controller.checkpoint_bytes
        db.transact(
            [
                {
                    "op": "insert",
                    "table": "Port",
                    "row": {
                        "name": "p2",
                        "port_num": 2,
                        "vlan_mode": "access",
                        "tag": 10,
                    },
                }
            ]
        )
        controller.drain()
        controller.save_checkpoint()
        assert controller.last_checkpoint_mode == "delta"
        assert 0 < controller.checkpoint_bytes < full_bytes
        controller.stop()

        # The restart restores full + segment: the engine already holds
        # p2's entries and the device epoch from the segment meta
        # matches, so the warm start ships nothing.
        second = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        )
        second.start(warm=True)
        second.drain()
        assert second.restart_mode == "warm"
        assert second.warm_skips == 1
        assert second.entries_written == 0
        assert len(switch.table("in_vlan")) == 3
        second.stop()

    def test_compaction_after_checkpoint_every(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        controller = NerpaController(
            project, db, [switch], state_dir=str(tmp_path),
            checkpoint_every=2,
        ).start()
        _snvs_config(db, (0,))
        controller.drain()
        modes = []
        for _ in range(5):
            controller.save_checkpoint()
            modes.append(controller.last_checkpoint_mode)
        assert modes == ["full", "delta", "delta", "full", "delta"]
        controller.stop()

    def test_explicit_modes(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        controller = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        ).start()
        _snvs_config(db, (0,))
        controller.drain()
        with pytest.raises(ReproError):
            controller.save_checkpoint(mode="sideways")
        controller.save_checkpoint(mode="full")
        assert controller.last_checkpoint_mode == "full"
        controller.save_checkpoint(mode="delta")
        assert controller.last_checkpoint_mode == "delta"
        controller.stop()

    def test_delta_restart_applies_offline_changes_too(self, tmp_path):
        """Changes after the last delta segment (while the controller
        was down) still converge via the warm mgmt diff."""
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        first = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        ).start()
        _snvs_config(db, (0,))
        first.drain()
        first.save_checkpoint(mode="full")
        db.transact(
            [
                {
                    "op": "insert",
                    "table": "Port",
                    "row": {
                        "name": "p1",
                        "port_num": 1,
                        "vlan_mode": "access",
                        "tag": 10,
                    },
                }
            ]
        )
        first.drain()
        first.save_checkpoint(mode="delta")
        first.stop()
        # Lands while no controller is running.
        db.transact(
            [
                {
                    "op": "insert",
                    "table": "Port",
                    "row": {
                        "name": "p2",
                        "port_num": 2,
                        "vlan_mode": "access",
                        "tag": 10,
                    },
                }
            ]
        )
        second = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        )
        second.start(warm=True)
        second.drain()
        assert second.restart_mode == "warm"
        assert len(switch.table("in_vlan")) == 3
        second.stop()


class TestCompactRace:
    def test_compact_never_loses_concurrent_transactions(self, tmp_path):
        """Regression: transactions committing while ``compact()`` runs
        must land in either the snapshot or the fresh journal — never
        in the closed one."""
        schema = build_snvs().schema
        db = Database(schema)
        persister = Persister(db, str(tmp_path))
        stop = threading.Event()
        inserted = []

        def hammer():
            vid = 1
            while not stop.is_set():
                db.transact(
                    [
                        {
                            "op": "insert",
                            "table": "Vlan",
                            "row": {"vid": vid},
                        }
                    ]
                )
                inserted.append(vid)
                vid += 1

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            for _ in range(50):
                persister.compact()
        finally:
            stop.set()
            thread.join(30.0)
        assert not thread.is_alive()
        persister.close()

        recovered = restore(str(tmp_path), schema=schema)
        assert recovered.count("Vlan") == len(inserted)
        assert {row["vid"] for row in recovered.rows("Vlan")} == set(inserted)


class TestBackgroundCheckpointTimer:
    def _wait_for(self, predicate, timeout=15.0, what="condition"):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return
            time.sleep(0.005)
        raise AssertionError(f"timed out waiting for {what}")

    def test_timer_cuts_checkpoints_and_stop_cancels_it(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        controller = NerpaController(
            project,
            db,
            [switch],
            state_dir=str(tmp_path),
            checkpoint_interval_s=0.01,
        ).start()
        _snvs_config(db, (0, 1))
        controller.drain()
        self._wait_for(
            lambda: controller.auto_checkpoints >= 2,
            what="background checkpoints",
        )
        timer = controller._ckpt_timer_thread
        assert timer is not None and timer.is_alive()
        controller.stop()
        assert not timer.is_alive()
        saves = controller.auto_checkpoints
        time.sleep(0.05)
        assert controller.auto_checkpoints == saves  # really cancelled
        # What the timer persisted is a valid warm-start source.
        second = NerpaController(
            project,
            db,
            [project.new_simulator(n_ports=8)],
            state_dir=str(tmp_path),
        )
        second.start(warm=True)
        second.drain()
        assert second.restart_mode == "warm"
        assert len(second.devices[0].io.service.sim.table("in_vlan")) == 2
        second.stop()

    def test_timer_racing_explicit_saves_keeps_chain_valid(self, tmp_path):
        """Regression: the background timer and an explicit
        ``save_checkpoint()`` caller race on the store's index/anchor
        bookkeeping; without the controller's checkpoint lock the chain
        interleaves into segments that do not validate."""
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=16)
        controller = NerpaController(
            project,
            db,
            [switch],
            state_dir=str(tmp_path),
            checkpoint_interval_s=0.002,
        ).start()
        _snvs_config(db, (0,))
        controller.drain()

        stop = threading.Event()

        def churn():
            port = 1
            while not stop.is_set():
                db.transact(
                    [
                        {
                            "op": "insert",
                            "table": "Port",
                            "row": {
                                "name": f"p{port}",
                                "port_num": (port % 15) + 1,
                                "vlan_mode": "access",
                                "tag": 10,
                            },
                        }
                    ]
                )
                db.transact(
                    [
                        {
                            "op": "delete",
                            "table": "Port",
                            "where": [["name", "==", f"p{port}"]],
                        }
                    ]
                )
                port += 1

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            controller.save_checkpoint("full")
            for i in range(30):
                controller.save_checkpoint(
                    ("auto", "delta", "full")[i % 3]
                )
        finally:
            stop.set()
            churner.join(30.0)
        assert not churner.is_alive()
        controller.drain()
        controller.save_checkpoint()
        controller.stop()

        # The chain survived the race: a fresh controller warm-starts
        # from it and converges to the database's current state.
        second = NerpaController(
            project,
            db,
            [project.new_simulator(n_ports=16)],
            state_dir=str(tmp_path),
        )
        second.start(warm=True)
        second.drain()
        assert second.restart_mode == "warm"
        assert len(second.devices[0].io.service.sim.table("in_vlan")) == 1
        second.stop()
