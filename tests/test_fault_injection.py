"""End-to-end fault injection: the controller survives plane restarts.

The robustness acceptance story for the fault-tolerance layer:

* a management-server restart mid-churn → the controller reconnects,
  re-subscribes its monitor, and reconciles the fresh snapshot against
  the engine's input relations;
* a P4Runtime-server restart mid-churn → the device is quarantined by
  the circuit breaker while down, then fully resynchronized from the
  engine's output relations on reconnect;
* a quarantined device never blocks syncs to healthy devices;
* ``NerpaController.health()`` reports the per-peer transition history
  (connected → retrying → quarantined → recovered).

Every faulty run is differentially compared against an uninterrupted
clean run driven by the same churn stream (the comparison style of
``tests/test_differential.py``): final device table state must be
byte-identical.
"""

import json
import socket
import time

import pytest

from repro.core.controller import NerpaController
from repro.core.pipeline import nerpa_build
from repro.mgmt.client import ManagementClient
from repro.mgmt.database import Database
from repro.mgmt.schema import simple_schema
from repro.mgmt.server import ManagementServer
from repro.net import RetryPolicy
from repro.p4runtime.api import DeviceService
from repro.p4runtime.client import P4RuntimeClient
from repro.p4runtime.server import P4RuntimeServer
from repro.workloads.churn import robotron_churn

FAST = RetryPolicy(
    connect_timeout=2.0,
    call_timeout=2.0,
    max_reconnect_attempts=100,
    base_delay=0.01,
    max_delay=0.1,
)

SCHEMA = simple_schema(
    "net", {"PortCfg": {"port": "integer", "out_port": "integer"}}
)

P4 = """
header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
struct headers_t { eth_t eth; }
struct meta_t { bit<1> pad; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
         inout standard_metadata_t std) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control Ing(inout headers_t hdr, inout meta_t m,
            inout standard_metadata_t std) {
    action forward(bit<16> port) { std.egress_spec = port; }
    action drop() { mark_to_drop(); }
    table patch {
        key = { std.ingress_port : exact; }
        actions = { forward; drop; }
        default_action = drop();
    }
    apply { patch.apply(); }
}
"""

RULES = "Patch(p as bit<16>, PatchActionForward{o as bit<16>}) :- PortCfg(_, p, o)."

N_PORTS = 8
N_VLANS = 50
N_EVENTS = 60
CHURN_SEED = 42


def build_project():
    return nerpa_build(SCHEMA, RULES, P4)


def free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def wait_for(predicate, timeout=15.0, what="condition"):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


def churn_events():
    return list(
        robotron_churn(N_PORTS, N_VLANS, N_EVENTS, seed=CHURN_SEED)
    )


def seed_model(transact) -> None:
    for port in range(N_PORTS):
        transact(
            [
                {
                    "op": "insert",
                    "table": "PortCfg",
                    "row": {"port": port, "out_port": 1},
                }
            ]
        )


def apply_event(transact, event) -> None:
    """Translate one churn event into a management transaction."""
    if event.kind == "add_port":
        transact(
            [
                {
                    "op": "insert",
                    "table": "PortCfg",
                    "row": {"port": event.port, "out_port": event.vlan},
                }
            ]
        )
    elif event.kind == "del_port":
        transact(
            [
                {
                    "op": "delete",
                    "table": "PortCfg",
                    "where": [["port", "==", event.port]],
                }
            ]
        )
    else:  # retag_port / move_port: attribute update
        transact(
            [
                {
                    "op": "update",
                    "table": "PortCfg",
                    "where": [["port", "==", event.port]],
                    "row": {"out_port": event.vlan},
                }
            ]
        )


def table_state(sim) -> str:
    """Canonical wire dump of a simulator's table entries (the
    byte-identical comparison used across runs)."""
    service = DeviceService(sim)
    entries = []
    for entry in service.read_table("patch"):
        entries.append(
            {
                "matches": [list(m.key()) for m in entry.matches],
                "action": entry.action,
                "params": list(entry.action_params),
                "priority": entry.priority,
            }
        )
    entries.sort(key=lambda e: json.dumps(e, sort_keys=True, default=str))
    return json.dumps(entries, sort_keys=True, default=str)


def clean_run():
    """Uninterrupted reference run over the same churn stream."""
    project = build_project()
    db = Database(project.schema)
    switch = project.new_simulator(n_ports=64)
    controller = NerpaController(project, db, [switch]).start()
    seed_model(db.transact)
    for event in churn_events():
        apply_event(db.transact, event)
    controller.stop()
    return table_state(switch)


@pytest.mark.slow
class TestManagementPlaneRestart:
    def test_controller_reconciles_after_mgmt_restart_mid_churn(self):
        project = build_project()
        db = Database(project.schema)
        port = free_port()
        server = ManagementServer(db, port=port).start()
        switch = project.new_simulator(n_ports=64)
        client = ManagementClient("127.0.0.1", port, policy=FAST)
        controller = NerpaController(project, client, [switch]).start()
        try:
            seed_model(db.transact)
            events = churn_events()
            half = len(events) // 2
            for event in events[:half]:
                apply_event(db.transact, event)

            # Kill the management server mid-churn.  The database (its
            # durable state) survives; the controller's channel does not.
            server.stop()
            # Churn continues against the database while the controller
            # is deaf — these changes MUST be recovered via reconcile.
            for event in events[half : half + 10]:
                apply_event(db.transact, event)

            server = ManagementServer(db, port=port).start()
            wait_for(
                lambda: controller.mgmt_reconciles >= 1,
                what="management-plane reconcile",
            )
            # Remaining churn flows through the re-subscribed monitor.
            for event in events[half + 10 :]:
                apply_event(db.transact, event)
            expected = clean_run()
            # A count-based wait would race updates that change row
            # content without changing row count.
            wait_for(
                lambda: table_state(switch) == expected,
                what="device to converge after restart",
            )

            health = controller.health()
            assert health["mgmt"]["state"] == "connected"
            assert health["mgmt"]["reconnects"] >= 1
            transitions = health["mgmt"]["transitions"]
            assert "retrying" in transitions
            assert transitions[-1] == "connected"
        finally:
            controller.stop()
            client.close()
            server.stop()


@pytest.mark.slow
class TestDevicePlaneRestart:
    def test_device_full_sync_after_p4runtime_restart_mid_churn(self):
        project = build_project()
        db = Database(project.schema)
        sim = project.new_simulator(n_ports=64)
        port = free_port()
        server = P4RuntimeServer(sim, port=port).start()
        device = P4RuntimeClient("127.0.0.1", port, policy=FAST)
        controller = NerpaController(
            project, db, [device], breaker_threshold=2
        )
        controller.start()
        try:
            seed_model(db.transact)
            events = churn_events()
            half = len(events) // 2
            for event in events[:half]:
                apply_event(db.transact, event)

            server.stop()
            # Churn continues; writes to the dead device fail, trip the
            # breaker, and are skipped — ingest never stalls.  Pace the
            # events so each becomes its own failed round trip (a burst
            # would coalesce into one batch = one breaker strike).
            device_state = controller.devices[0]
            for n, event in enumerate(events[half : half + 10], start=1):
                apply_event(db.transact, event)
                wait_for(
                    lambda: device_state.quarantined
                    or device_state.syncs_missed >= n,
                    what="write attempt to resolve",
                )
            assert device_state.quarantined

            server = P4RuntimeServer(sim, port=port).start()
            wait_for(
                lambda: controller.device_resyncs >= 1
                and not controller.devices[0].quarantined,
                what="device resync after restart",
            )
            for event in events[half + 10 :]:
                apply_event(db.transact, event)
            expected = clean_run()
            wait_for(
                lambda: table_state(sim) == expected,
                what="device to converge after resync",
            )

            health = controller.health()
            dev = health["devices"][0]
            assert dev["quarantined"] is False
            assert dev["resyncs"] >= 1
            assert dev["syncs_missed"] >= 1
        finally:
            controller.stop()
            device.close()
            server.stop()

    def test_health_reports_full_transition_sequence(self):
        """connected → retrying → quarantined → (connected) → recovered."""
        project = build_project()
        db = Database(project.schema)
        sim = project.new_simulator(n_ports=64)
        port = free_port()
        server = P4RuntimeServer(sim, port=port).start()
        device = P4RuntimeClient("127.0.0.1", port, policy=FAST)
        controller = NerpaController(
            project, db, [device], breaker_threshold=1
        )
        controller.start()
        try:
            seed_model(db.transact)
            server.stop()
            # One failed sync is enough at threshold 1.
            apply_event(
                db.transact,
                next(iter(robotron_churn(N_PORTS, N_VLANS, 1, seed=7))),
            )
            wait_for(
                lambda: controller.devices[0].quarantined,
                what="quarantine at threshold 1",
            )
            server = P4RuntimeServer(sim, port=port).start()
            wait_for(
                lambda: not controller.devices[0].quarantined,
                what="recovery",
            )
            transitions = controller.health()["devices"][0]["transitions"]
            # The required lifecycle appears in order.
            indices = [
                transitions.index("connected"),
                transitions.index("retrying"),
                transitions.index("quarantined"),
                len(transitions) - 1 - transitions[::-1].index("recovered"),
            ]
            assert indices == sorted(indices)
            assert "recovered" in transitions
        finally:
            controller.stop()
            device.close()
            server.stop()


@pytest.mark.slow
class TestQuarantineIsolation:
    def test_quarantined_device_does_not_block_healthy_devices(self):
        project = build_project()
        db = Database(project.schema)
        healthy_sim = project.new_simulator(n_ports=64)
        flaky_sim = project.new_simulator(n_ports=64)
        port = free_port()
        server = P4RuntimeServer(flaky_sim, port=port).start()
        flaky = P4RuntimeClient("127.0.0.1", port, policy=FAST)
        controller = NerpaController(
            project, db, [healthy_sim, flaky], breaker_threshold=1
        )
        controller.start()
        try:
            seed_model(db.transact)
            controller.drain()
            assert len(healthy_sim.table("patch")) == N_PORTS
            assert len(flaky_sim.table("patch")) == N_PORTS

            server.stop()
            events = churn_events()
            started = time.time()
            for event in events[:10]:
                apply_event(db.transact, event)
            # Ingest never blocks on the dead device — the transact
            # loop returns promptly while the flaky device's own writer
            # burns its call timeout in isolation.
            assert time.time() - started < 10 * FAST.call_timeout
            wait_for(
                lambda: controller.devices[1].quarantined,
                what="flaky device quarantine",
            )
            assert not controller.devices[0].quarantined
            wait_for(
                lambda: len(healthy_sim.table("patch"))
                == db.count("PortCfg"),
                what="healthy device to stay in lockstep",
            )

            server = P4RuntimeServer(flaky_sim, port=port).start()
            wait_for(
                lambda: not controller.devices[1].quarantined,
                what="flaky device recovery",
            )
            wait_for(
                lambda: table_state(flaky_sim) == table_state(healthy_sim),
                what="flaky device to catch up",
            )
        finally:
            controller.stop()
            flaky.close()
            server.stop()
