"""Additional aggregate and collection-handling engine tests."""

from repro.dlog import compile_program
from repro.dlog.values import MapValue


class TestAggregateVariants:
    PROG = """
    input relation M(k: string, v: bigint)
    output relation Min(k: string, v: bigint)
    output relation Max(k: string, v: bigint)
    output relation Avg(k: string, v: float)
    Min(k, m) :- M(k, v), var m = Aggregate((k), min(v)).
    Max(k, m) :- M(k, v), var m = Aggregate((k), max(v)).
    Avg(k, m) :- M(k, v), var m = Aggregate((k), avg(v)).
    """

    def test_min_max_avg(self):
        rt = compile_program(self.PROG).start()
        rt.transaction(inserts={"M": [("a", 1), ("a", 5), ("a", 3)]})
        assert rt.dump("Min") == {("a", 1)}
        assert rt.dump("Max") == {("a", 5)}
        assert rt.dump("Avg") == {("a", 3.0)}

    def test_min_updates_on_delete(self):
        rt = compile_program(self.PROG).start()
        rt.transaction(inserts={"M": [("a", 1), ("a", 5)]})
        result = rt.transaction(deletes={"M": [("a", 1)]})
        assert result.deleted("Min") == [("a", 1)]
        assert result.inserted("Min") == [("a", 5)]

    def test_group_to_map(self):
        prog = """
        input relation Pair(g: string, k: string, v: bigint)
        output relation AsMap(g: string, m: Map<string, bigint>)
        AsMap(g, m) :- Pair(g, k, v), var m = Aggregate((g), group_to_map(k, v)).
        """
        rt = compile_program(prog).start()
        rt.transaction(
            inserts={"Pair": [("g", "x", 1), ("g", "y", 2)]}
        )
        ((g, m),) = rt.dump("AsMap")
        assert g == "g"
        assert isinstance(m, MapValue)
        assert m["x"] == 1 and m["y"] == 2

    def test_multiple_group_keys(self):
        prog = """
        input relation T(a: string, b: string, v: bigint)
        output relation S(a: string, b: string, total: bigint)
        S(a, b, t) :- T(a, b, v), var t = Aggregate((a, b), sum(v)).
        """
        rt = compile_program(prog).start()
        rt.transaction(
            inserts={"T": [("x", "y", 1), ("x", "y", 2), ("x", "z", 4)]}
        )
        assert rt.dump("S") == {("x", "y", 3), ("x", "z", 4)}

    def test_aggregate_feeding_join(self):
        prog = """
        input relation Load(server: string, mb: bigint)
        input relation Limit(server: string, cap: bigint)
        output relation Overloaded(server: string)
        relation Total(server: string, t: bigint)
        Total(s, t) :- Load(s, mb), var t = Aggregate((s), sum(mb)).
        Overloaded(s) :- Total(s, t), Limit(s, cap), t > cap.
        """
        rt = compile_program(prog).start()
        rt.transaction(
            inserts={
                "Load": [("a", 60), ("a", 50), ("b", 10)],
                "Limit": [("a", 100), ("b", 100)],
            }
        )
        assert rt.dump("Overloaded") == {("a",)}
        rt.transaction(deletes={"Load": [("a", 60)]})
        assert rt.dump("Overloaded") == set()


class TestFlatMapOverMap:
    def test_flatmap_map_yields_pairs(self):
        prog = """
        input relation Conf(name: string, opts: Map<string, string>)
        output relation Opt(name: string, key: string, value: string)
        Opt(n, k, v) :- Conf(n, opts), var kv = FlatMap(opts),
            var (k, v) = kv.
        """
        rt = compile_program(prog).start()
        rt.transaction(
            inserts={"Conf": [("a", MapValue([("x", "1"), ("y", "2")]))]}
        )
        assert rt.dump("Opt") == {("a", "x", "1"), ("a", "y", "2")}


class TestTupleColumns:
    def test_tuple_column_round_trip(self):
        prog = """
        input relation R(pair: (bigint, string))
        output relation L(x: bigint)
        output relation S(s: string)
        L(p.0) :- R(p).
        S(p.1) :- R(p).
        """
        rt = compile_program(prog).start()
        rt.transaction(inserts={"R": [((7, "seven"),)]})
        assert rt.dump("L") == {(7,)}
        assert rt.dump("S") == {("seven",)}

    def test_tuple_destructuring_in_atom(self):
        prog = """
        input relation R(pair: (bigint, string))
        output relation Out(x: bigint, s: string)
        Out(x, s) :- R((x, s)).
        """
        rt = compile_program(prog).start()
        rt.transaction(inserts={"R": [((1, "a"),), ((2, "b"),)]})
        assert rt.dump("Out") == {(1, "a"), (2, "b")}
