"""Property-based tests of the engine's core claim.

The entire value proposition of the incremental control plane is: after
any sequence of transactions, every relation's contents equal what a
fresh evaluation over the final inputs would produce, and the sum of
emitted deltas equals the final contents.  We drive several
representative programs (joins, negation, aggregation, recursion) with
random edit scripts and check both.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dlog import compile_program

JOIN_PROG = """
input relation A(x: bigint, y: bigint)
input relation B(y: bigint, z: bigint)
output relation J(x: bigint, z: bigint)
J(x, z) :- A(x, y), B(y, z).
"""

NEG_PROG = """
input relation A(x: bigint, y: bigint)
input relation B(y: bigint, z: bigint)
output relation N(x: bigint)
N(x) :- A(x, y), not B(y, _).
"""

AGG_PROG = """
input relation A(x: bigint, y: bigint)
input relation B(y: bigint, z: bigint)
output relation Cnt(x: bigint, n: bigint)
output relation Tot(x: bigint, s: bigint)
Cnt(x, n) :- A(x, y), var n = Aggregate((x), count()).
Tot(x, s) :- A(x, y), B(y, z), var s = Aggregate((x), sum(z)).
"""

REACH_PROG = """
input relation A(x: bigint, y: bigint)
input relation B(y: bigint, z: bigint)
output relation Reach(x: bigint, y: bigint)
Reach(x, y) :- A(x, y).
Reach(x, z) :- Reach(x, y), A(y, z).
output relation Labeled(x: bigint)
Labeled(x) :- Reach(x, _), not B(x, _).
"""

PROGRAMS = {
    "join": JOIN_PROG,
    "negation": NEG_PROG,
    "aggregation": AGG_PROG,
    "recursion": REACH_PROG,
}

pairs = st.tuples(st.integers(0, 4), st.integers(0, 4))

# A script is a list of transactions; each transaction toggles some rows
# in A and B (insert if absent, delete if present).
scripts = st.lists(
    st.tuples(st.lists(pairs, max_size=4), st.lists(pairs, max_size=4)),
    min_size=1,
    max_size=8,
)


def toggle(state, rows):
    # Dedupe within a transaction: the engine applies a transaction's
    # deletes before its inserts, so toggling one row twice in the same
    # transaction would not model sequential state.
    rows = list(dict.fromkeys(rows))
    inserts, deletes = [], []
    for row in rows:
        if row in state:
            state.discard(row)
            deletes.append(row)
        else:
            state.add(row)
            inserts.append(row)
    return inserts, deletes


def run_script(program_text, script, **compile_kwargs):
    rt = compile_program(program_text, **compile_kwargs).start()
    a_state, b_state = set(), set()
    summed = {}
    for a_rows, b_rows in script:
        a_ins, a_del = toggle(a_state, a_rows)
        b_ins, b_del = toggle(b_state, b_rows)
        result = rt.transaction(
            inserts={"A": a_ins, "B": b_ins},
            deletes={"A": a_del, "B": b_del},
        )
        for rel, delta in result.deltas.items():
            acc = summed.setdefault(rel, {})
            for row, w in delta.items():
                acc[row] = acc.get(row, 0) + w
                if acc[row] == 0:
                    del acc[row]
    return rt, a_state, b_state, summed


class TestIncrementalEqualsFromScratch:
    @settings(max_examples=40, deadline=None)
    @given(script=scripts, program_name=st.sampled_from(sorted(PROGRAMS)))
    def test_final_state_matches_fresh_run(self, script, program_name):
        text = PROGRAMS[program_name]
        rt, a_state, b_state, _ = run_script(text, script)

        fresh = compile_program(text).start()
        fresh.transaction(inserts={"A": list(a_state), "B": list(b_state)})

        prog = compile_program(text)
        for rel in prog.output_relations:
            assert rt.dump(rel) == fresh.dump(rel), (
                f"{program_name}/{rel}: incremental diverged from scratch"
            )

    @settings(max_examples=40, deadline=None)
    @given(script=scripts, program_name=st.sampled_from(sorted(PROGRAMS)))
    def test_summed_deltas_equal_final_contents(self, script, program_name):
        text = PROGRAMS[program_name]
        rt, _, _, summed = run_script(text, script)
        prog = compile_program(text)
        for rel in prog.output_relations:
            acc = summed.get(rel, {})
            assert all(w == 1 for w in acc.values()), (
                f"{program_name}/{rel}: non-unit accumulated weight {acc}"
            )
            assert set(acc) == rt.dump(rel)

    @settings(max_examples=25, deadline=None)
    @given(script=scripts)
    def test_dred_equals_recompute_mode(self, script):
        rt_dred, _, _, _ = run_script(REACH_PROG, script)
        rt_full, _, _, _ = run_script(
            REACH_PROG, script, recursive_mode="recompute"
        )
        assert rt_dred.dump("Reach") == rt_full.dump("Reach")
        assert rt_dred.dump("Labeled") == rt_full.dump("Labeled")
