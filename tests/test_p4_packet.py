"""Unit/property tests for bit-exact packet encoding and header codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DataPlaneError
from repro.p4.headers import (
    ETHERTYPE_IPV4,
    ETHERTYPE_VLAN,
    EthernetView,
    arp_request,
    ethernet,
    int_to_ip,
    int_to_mac,
    ip_to_int,
    ipv4,
    mac_to_int,
    udp,
)
from repro.p4.packet import BitReader, BitWriter, pack_fields, unpack_fields


class TestBitPacking:
    def test_byte_aligned_round_trip(self):
        data = pack_fields([(0xAB, 8), (0xCDEF, 16)])
        assert data == b"\xab\xcd\xef"
        assert unpack_fields(data, [8, 16]) == [0xAB, 0xCDEF]

    def test_unaligned_fields(self):
        # VLAN TCI: pcp(3) dei(1) vid(12)
        data = pack_fields([(5, 3), (1, 1), (0xABC, 12)])
        assert len(data) == 2
        assert unpack_fields(data, [3, 1, 12]) == [5, 1, 0xABC]

    def test_value_too_wide_rejected(self):
        w = BitWriter()
        with pytest.raises(DataPlaneError):
            w.write(256, 8)

    def test_partial_byte_rejected(self):
        w = BitWriter()
        w.write(1, 3)
        with pytest.raises(DataPlaneError):
            w.to_bytes()

    def test_short_read_rejected(self):
        r = BitReader(b"\xff")
        r.read(4)
        with pytest.raises(DataPlaneError):
            r.read(8)

    def test_rest_after_aligned_reads(self):
        r = BitReader(b"\x01\x02\x03")
        r.read(8)
        assert r.rest() == b"\x02\x03"

    @given(
        st.lists(
            st.tuples(st.integers(1, 24), st.integers(0, 2**24 - 1)),
            min_size=1,
            max_size=8,
        )
    )
    def test_round_trip_random_fields(self, specs):
        fields = [(value & ((1 << width) - 1), width) for width, value in specs]
        total = sum(w for _, w in fields)
        pad = (8 - total % 8) % 8
        if pad:
            fields.append((0, pad))
        data = pack_fields(fields)
        assert unpack_fields(data, [w for _, w in fields]) == [
            v for v, _ in fields
        ]


class TestAddressCodecs:
    def test_mac_round_trip(self):
        assert int_to_mac(mac_to_int("aa:bb:cc:00:11:22")) == "aa:bb:cc:00:11:22"

    def test_ip_round_trip(self):
        assert int_to_ip(ip_to_int("192.168.1.200")) == "192.168.1.200"

    def test_bad_mac(self):
        with pytest.raises(ValueError):
            mac_to_int("aa:bb")

    def test_bad_ip(self):
        with pytest.raises(ValueError):
            ip_to_int("1.2.3.400")


class TestFrames:
    def test_plain_ethernet(self):
        frame = ethernet("ff:ff:ff:ff:ff:ff", "aa:00:00:00:00:01", payload=b"hi")
        view = EthernetView(frame)
        assert view.dst == "ff:ff:ff:ff:ff:ff"
        assert view.src == "aa:00:00:00:00:01"
        assert view.vlan is None
        assert view.payload == b"hi"

    def test_vlan_tagged(self):
        frame = ethernet(
            "aa:00:00:00:00:02",
            "aa:00:00:00:00:01",
            vlan=42,
            pcp=3,
            payload=b"x",
        )
        view = EthernetView(frame)
        assert view.vlan == 42
        assert view.pcp == 3
        assert view.ethertype == ETHERTYPE_IPV4
        # Raw tag bytes: ethertype 0x8100 at offset 12.
        assert frame[12:14] == b"\x81\x00"

    def test_ipv4_checksum_valid(self):
        packet = ipv4("10.0.0.1", "10.0.0.2", payload=udp(1000, 53, b"q"))
        header = packet[:20]
        total = 0
        for i in range(0, 20, 2):
            total += (header[i] << 8) | header[i + 1]
        while total > 0xFFFF:
            total = (total & 0xFFFF) + (total >> 16)
        assert total == 0xFFFF  # ones-complement sum over valid header

    def test_ipv4_total_length(self):
        packet = ipv4("1.2.3.4", "5.6.7.8", payload=b"abcd")
        assert ((packet[2] << 8) | packet[3]) == 24

    def test_arp_request_shape(self):
        pkt = arp_request("aa:00:00:00:00:01", "10.0.0.1", "10.0.0.2")
        assert len(pkt) == 28
        assert pkt[6:8] == b"\x00\x01"  # opcode request

    def test_vlan_ethertype_constant(self):
        assert ETHERTYPE_VLAN == 0x8100
