"""Unit tests for the control-plane language lexer."""

import pytest

from repro.dlog.lexer import tokenize
from repro.errors import LexError


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == "eof"

    def test_identifiers_and_keywords(self):
        toks = tokenize("input relation Port port_id")
        assert [t.kind for t in toks[:-1]] == ["keyword", "keyword", "ident", "ident"]
        assert values("input relation Port port_id") == [
            "input",
            "relation",
            "Port",
            "port_id",
        ]

    def test_underscore_is_operator(self):
        toks = tokenize("_")
        assert toks[0].kind == "op"
        assert toks[0].value == "_"

    def test_underscore_prefixed_identifier(self):
        toks = tokenize("_x")
        assert toks[0].kind == "ident"
        assert toks[0].value == "_x"

    def test_rule_operator(self):
        assert values("Label(n, l) :- Edge(n).") == [
            "Label",
            "(",
            "n",
            ",",
            "l",
            ")",
            ":-",
            "Edge",
            "(",
            "n",
            ")",
            ".",
        ]


class TestNumbers:
    def test_decimal(self):
        toks = tokenize("42")
        assert toks[0].kind == "int"
        assert toks[0].value == (42, None)

    def test_decimal_with_underscores(self):
        assert tokenize("1_000_000")[0].value == (1000000, None)

    def test_hex(self):
        assert tokenize("0xFF")[0].value == (255, None)

    def test_binary(self):
        assert tokenize("0b1010")[0].value == (10, None)

    def test_sized_decimal(self):
        assert tokenize("32'd5")[0].value == (5, 32)

    def test_sized_hex(self):
        assert tokenize("8'hFF")[0].value == (255, 8)

    def test_sized_binary(self):
        assert tokenize("4'b1010")[0].value == (10, 4)

    def test_float(self):
        tok = tokenize("3.25")[0]
        assert tok.kind == "float"
        assert tok.value == 3.25

    def test_float_exponent(self):
        assert tokenize("1.5e3")[0].value == 1500.0
        assert tokenize("2e2")[0].value == 200.0

    def test_integer_then_dot_is_not_float(self):
        # `1.` must lex as int then op (rule terminator), not a float.
        toks = tokenize("R(1).")
        assert [t.kind for t in toks[:-1]] == ["ident", "op", "int", "op", "op"]

    def test_bad_sized_literal_base(self):
        with pytest.raises(LexError):
            tokenize("8'q12")

    def test_sized_literal_missing_digits(self):
        with pytest.raises(LexError):
            tokenize("8'd")


class TestStrings:
    def test_simple_string(self):
        tok = tokenize('"hello"')[0]
        assert tok.kind == "string"
        assert tok.value == "hello"

    def test_escapes(self):
        assert tokenize(r'"a\nb\t\"c\\"')[0].value == 'a\nb\t"c\\'

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')


class TestComments:
    def test_line_comment(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* oops")


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_lex_error_position(self):
        try:
            tokenize("abc\n   $")
        except LexError as e:
            assert e.line == 2
            assert e.column == 4
        else:  # pragma: no cover
            raise AssertionError("expected LexError")


class TestOperators:
    def test_maximal_munch(self):
        assert values("a<<b <= c << d") == ["a", "<<", "b", "<=", "c", "<<", "d"]

    def test_concat_vs_plus(self):
        assert values("a ++ b + c") == ["a", "++", "b", "+", "c"]
