"""E3 — the load-balancer worst case (§2.2).

"On this benchmark, a DDlog controller took 2x the CPU time and 5x the
RAM as the C implementation."  The workload cold-starts with large load
balancers and then deletes each one — incrementality buys nothing
(every change is new work) while the automatic engine still pays for
its general-purpose indexing.

Shape to reproduce: the automatically incremental engine costs *more*
CPU and *more* memory than the hand-written controller here, in
roughly the paper's direction (>= ~2x CPU, >= ~2x RAM).  This is the
honest negative result the paper reports about its own approach.
"""

import time
import tracemalloc

from benchmarks.conftest import emit, report
from repro.baselines.lb_controller import HandWrittenLbController
from repro.dlog import compile_program
from repro.workloads.loadbalancer import LB_DLOG_PROGRAM, LoadBalancerWorkload

WORKLOAD = dict(n_lbs=20, backends_per_lb=50, n_switches=8)


def run_engine(measure_memory: bool = False):
    workload = LoadBalancerWorkload(**WORKLOAD)
    if measure_memory:
        tracemalloc.start()
    runtime = compile_program(LB_DLOG_PROGRAM).start()
    vips, attach = workload.cold_start_rows()
    started = time.process_time()
    runtime.transaction(inserts={"LbVip": vips, "LbSwitch": attach})
    for lb, vip_rows, attach_rows in workload.deletion_batches():
        runtime.transaction(
            deletes={"LbVip": vip_rows, "LbSwitch": attach_rows}
        )
    cpu = time.process_time() - started
    peak = 0
    if measure_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return cpu, peak, runtime


def run_hand_written(measure_memory: bool = False):
    workload = LoadBalancerWorkload(**WORKLOAD)
    if measure_memory:
        tracemalloc.start()
    controller = HandWrittenLbController()
    vips, attach = workload.cold_start_rows()
    started = time.process_time()
    controller.cold_start(vips, attach)
    for lb, _, _ in workload.deletion_batches():
        controller.delete_lb(lb)
    cpu = time.process_time() - started
    peak = 0
    if measure_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return cpu, peak, controller


def test_e3_lb_cold_start_worst_case(benchmark):
    engine_cpu, _, runtime = benchmark.pedantic(
        run_engine, rounds=1, iterations=1
    )
    hand_cpu, _, controller = run_hand_written()

    # Memory measured in separate passes so tracemalloc overhead does
    # not pollute the CPU numbers.
    _, engine_mem, _ = run_engine(measure_memory=True)
    _, hand_mem, _ = run_hand_written(measure_memory=True)

    cpu_ratio = engine_cpu / max(hand_cpu, 1e-9)
    mem_ratio = engine_mem / max(hand_mem, 1)

    workload = LoadBalancerWorkload(**WORKLOAD)
    report(
        f"E3: LB cold-start + per-LB delete "
        f"({workload.derived_entries} derived entries)",
        [
            ("engine CPU", f"{engine_cpu * 1e3:.1f} ms", ""),
            ("hand-written CPU", f"{hand_cpu * 1e3:.1f} ms", ""),
            ("CPU ratio", f"{cpu_ratio:.1f}x", "paper: 2x"),
            ("engine peak RAM", f"{engine_mem / 1e6:.2f} MB", ""),
            ("hand-written peak RAM", f"{hand_mem / 1e6:.2f} MB", ""),
            ("RAM ratio", f"{mem_ratio:.1f}x", "paper: 5x"),
        ],
        ["metric", "measured", "reference"],
    )

    # Final states agree (both empty after all deletions).
    assert runtime.dump("NatEntry") == set() == controller.entries
    emit(
        "e3", "cpu_ratio_vs_handwritten", "ratio_x",
        round(cpu_ratio, 2), threshold=1.5,
    )
    emit(
        "e3", "mem_ratio_vs_handwritten", "ratio_x",
        round(mem_ratio, 2), threshold=2.0,
    )
    # The paper's direction: the automatic engine pays on this shape.
    assert cpu_ratio >= 1.5
    assert mem_ratio >= 2.0


def _cold_start_once(bulk_load: bool):
    """One cold start (compile excluded): the initial bulk transaction
    that derives every NAT entry, on the requested engine path."""
    workload = LoadBalancerWorkload(**WORKLOAD)
    vips, attach = workload.cold_start_rows()
    runtime = compile_program(LB_DLOG_PROGRAM).start(bulk_load=bulk_load)
    started = time.perf_counter()
    runtime.transaction(inserts={"LbVip": vips, "LbSwitch": attach})
    return time.perf_counter() - started, runtime


def test_e3_bulk_load_cold_start_speedup(benchmark):
    """The bulk-load path must beat the per-delta reference path by
    >= 3x on the worst-case cold start — and be observationally
    identical to it."""

    def measure():
        bulk = min(_cold_start_once(True)[0] for _ in range(3))
        classic = min(_cold_start_once(False)[0] for _ in range(3))
        return bulk, classic

    bulk_seconds, classic_seconds = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    _, bulk_rt = _cold_start_once(True)
    _, classic_rt = _cold_start_once(False)
    assert bulk_rt.dump("NatEntry") == classic_rt.dump("NatEntry")
    assert bulk_rt.state_size() == classic_rt.state_size()

    speedup = classic_seconds / max(bulk_seconds, 1e-9)
    report(
        "E3: bulk-load vs per-delta cold start "
        f"({len(bulk_rt.dump('NatEntry'))} derived entries)",
        [
            ("per-delta path", f"{classic_seconds * 1e3:.1f} ms", ""),
            ("bulk-load path", f"{bulk_seconds * 1e3:.1f} ms", ""),
            ("speedup", f"{speedup:.1f}x", "gate: >= 3x"),
        ],
        ["metric", "measured", "reference"],
    )
    emit(
        "e3", "bulk_load_cold_start", "speedup_x",
        round(speedup, 2), threshold=3.0,
    )
    assert speedup >= 3.0
