"""H1 — leader failover: kill-to-converged vs a cold controller restart.

The HA claim: with a warm standby tailing the leader's checkpoint chain
(`repro.core.ha`), losing the leader costs roughly one lease TTL plus
an epoch check per device — NOT a full controller cold start (compile
the program, recompute the fixpoint from the management snapshot,
read-diff every device from scratch).  Failover latency is bounded by
the lease TTL and *independent of state size*; cold restart grows with
the derived state.

Workload: an LB-style join (VIPs x switches = 100k derived NAT
entries) — the cold-start worst case from C1/E3, which is exactly what
a replacement controller would have to recompute.  After the initial
full checkpoint, ~1% of the VIPs churn and the leader cuts a delta
checkpoint — the steady state the background checkpoint timer
(``checkpoint_interval_s``) maintains; the bench forces the cut so the
kill lands deterministically.  The standby replays the churn from the
chain, so at takeover the device's config epoch proves its tables
already match and the resync is skipped (``warm_skips``).

Measured:

* failover — wall clock from ``kill()`` (crash: the lease is NOT
  released) to the standby being leader with the device converged,
  TTL wait included;
* cold restart — a brand-new controller replacing the dead leader with
  no checkpoint and no warm engine, reconciling against the same
  devices.

Gate: failover >= 5x faster than the cold restart.
"""

import os
import time

from benchmarks.conftest import emit, report
from repro.core.controller import NerpaController
from repro.core.ha import HAController
from repro.core.pipeline import nerpa_build
from repro.mgmt.database import Database
from repro.mgmt.schema import simple_schema
from repro.p4runtime.api import DeviceService

N_VIPS = 1000
N_SWITCHES = 100  # derived entries = N_VIPS * N_SWITCHES = 100000
CHURNED_VIPS = max(1, N_VIPS // 100)  # ~1% churn after the full checkpoint

TTL = 0.3
SPEEDUP_GATE = 5.0

SCHEMA = simple_schema(
    "lb",
    {
        "Vip": {"vip": "integer", "backend": "integer"},
        "Sw": {"sw": "integer"},
    },
)

P4 = """
header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
struct headers_t { eth_t eth; }
struct meta_t { bit<1> pad; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
         inout standard_metadata_t std) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control Ing(inout headers_t hdr, inout meta_t m,
            inout standard_metadata_t std) {
    action forward(bit<16> port) { std.egress_spec = port; }
    action drop() { mark_to_drop(); }
    table nat {
        key = { hdr.eth.dst : exact; std.ingress_port : exact; }
        actions = { forward; drop; }
        default_action = drop();
        size = 262144;
    }
    apply { nat.apply(); }
}
"""

RULES = (
    "Nat(v as bit<48>, s as bit<16>, NatActionForward{b as bit<16>})"
    " :- Vip(_, v, b), Sw(_, s)."
)


def seed(db) -> None:
    db.transact(
        [
            {"op": "insert", "table": "Sw", "row": {"sw": s}}
            for s in range(N_SWITCHES)
        ]
    )
    db.transact(
        [
            {
                "op": "insert",
                "table": "Vip",
                "row": {"vip": vip, "backend": vip % 97},
            }
            for vip in range(N_VIPS)
        ]
    )


def churn(db) -> None:
    """Re-point ~1% of the VIPs (each touches N_SWITCHES entries)."""
    for vip in range(CHURNED_VIPS):
        db.transact(
            [
                {
                    "op": "update",
                    "table": "Vip",
                    "where": [["vip", "==", vip]],
                    "row": {"backend": 1000 + vip},
                }
            ]
        )


def table_state(sim) -> tuple:
    return tuple(
        sorted(
            (entry.match_key(), entry.action, entry.action_params)
            for entry in DeviceService(sim).read_table("nat")
        )
    )


def wait_until(predicate, timeout=60.0, what="condition") -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.002)
    raise AssertionError(f"failover bench timed out waiting for {what}")


def _replica(project, db, sim, state_dir, owner):
    return HAController(
        project,
        db,
        [sim],
        state_dir,
        lease_name="h1-leader",
        owner=owner,
        ttl=TTL,
        renew_interval=TTL / 3.0,
        poll_interval=TTL / 6.0,
    )


def _segments_on_disk(state_dir: str) -> int:
    return sum(
        1 for name in os.listdir(state_dir) if ".delta-" in name
    )


def test_h1_failover_vs_cold_restart(benchmark, tmp_path):
    project = nerpa_build(SCHEMA, RULES, P4)
    db = Database(project.schema)
    sim = project.new_simulator(n_ports=64)
    state_dir = str(tmp_path / "state")

    # The leader builds up the full derived state and checkpoints it.
    a = _replica(project, db, sim, state_dir, "a")
    a.start()
    wait_until(lambda: a.is_leader, what="initial leader election")
    seed(db)
    a.controller.drain()
    assert len(sim.table("nat")) == N_VIPS * N_SWITCHES
    a.controller.save_checkpoint()

    # The warm standby tails the chain until it has absorbed it.
    b = _replica(project, db, sim, state_dir, "b")
    b.start()
    wait_until(
        lambda: (b.metrics().get("follower") or {}).get("ready", False),
        what="standby to absorb the checkpoint",
    )

    # ~1% churn, then a delta checkpoint carrying it — the steady state
    # the background timer maintains (forced here so the kill lands at
    # a deterministic point).  The standby replays the churn from the
    # chain before the kill.
    churn(db)
    a.controller.drain()
    a.controller.save_checkpoint(mode="delta")
    want_segments = _segments_on_disk(state_dir)
    wait_until(
        lambda: (b.metrics().get("follower") or {}).get(
            "segments_replayed", 0
        )
        >= want_segments,
        what="standby to replay the churn delta",
    )
    expected = table_state(sim)

    def run_failover() -> float:
        started = time.perf_counter()
        a.kill()  # crash: no lease release, standby waits out the TTL
        wait_until(lambda: b.is_leader, what="standby promotion")
        b.controller.drain()
        return time.perf_counter() - started

    failover_seconds = benchmark.pedantic(
        run_failover, rounds=1, iterations=1
    )
    assert table_state(sim) == expected
    assert b.epoch == 2
    # The device's config epoch proved its tables current: the takeover
    # skipped the O(state) read-diff — that is what makes failover
    # latency independent of state size.
    assert b.controller.warm_skips == 1
    b.stop()

    # Cold baseline: a fresh replacement controller with no checkpoint
    # and no warm engine — compile, recompute, reconcile the device.
    cold_started = time.perf_counter()
    cold_project = nerpa_build(SCHEMA, RULES, P4)
    cold = NerpaController(cold_project, db, [sim]).start(reconcile=True)
    cold.drain()
    cold_seconds = time.perf_counter() - cold_started
    assert table_state(sim) == expected
    cold.stop()

    speedup = cold_seconds / max(failover_seconds, 1e-9)
    report(
        f"H1: leader failover at ~1% churn ({N_VIPS * N_SWITCHES} "
        f"derived entries, TTL {TTL * 1e3:.0f} ms)",
        [
            ("kill -> converged (warm standby)",
             f"{failover_seconds * 1e3:.1f} ms", ""),
            ("cold controller restart",
             f"{cold_seconds * 1e3:.1f} ms", ""),
            ("speedup", f"{speedup:.1f}x",
             f"gate: >= {SPEEDUP_GATE:.0f}x"),
        ],
        ["metric", "measured", "reference"],
    )
    emit(
        "h1", "failover_vs_cold_restart", "speedup_x",
        round(speedup, 2), threshold=SPEEDUP_GATE,
    )
    emit(
        "h1", "kill_to_converged", "seconds",
        round(failover_seconds, 4), ttl_seconds=TTL,
        churned_vips=CHURNED_VIPS,
    )
    emit("h1", "cold_restart", "seconds", round(cold_seconds, 4))
    assert speedup >= SPEEDUP_GATE
