"""R1 — recovery: reconnect-to-converged latency after a plane restart.

Measures the fault-tolerance layer's end-to-end recovery time — from
the instant a stopped server comes back to the instant the controller
has reconnected, reconciled, and driven the device byte-identical to an
uninterrupted run:

* management plane: restart → monitor re-subscribed → snapshot diffed
  against the engine's input relations → device converged;
* device plane: restart → quarantined device resynchronized from the
  engine's output relations → device converged.
"""

import json
import socket
import time

from benchmarks.conftest import emit, report
from repro.core.controller import NerpaController
from repro.core.pipeline import nerpa_build
from repro.mgmt.client import ManagementClient
from repro.mgmt.database import Database
from repro.mgmt.schema import simple_schema
from repro.mgmt.server import ManagementServer
from repro.net import RetryPolicy
from repro.p4runtime.api import DeviceService
from repro.p4runtime.client import P4RuntimeClient
from repro.p4runtime.server import P4RuntimeServer

N_ROWS = 100

FAST = RetryPolicy(
    connect_timeout=2.0,
    call_timeout=2.0,
    max_reconnect_attempts=200,
    base_delay=0.01,
    max_delay=0.05,
)

SCHEMA = simple_schema(
    "net", {"PortCfg": {"port": "integer", "out_port": "integer"}}
)

P4 = """
header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
struct headers_t { eth_t eth; }
struct meta_t { bit<1> pad; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
         inout standard_metadata_t std) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control Ing(inout headers_t hdr, inout meta_t m,
            inout standard_metadata_t std) {
    action forward(bit<16> port) { std.egress_spec = port; }
    action drop() { mark_to_drop(); }
    table patch {
        key = { std.ingress_port : exact; }
        actions = { forward; drop; }
        default_action = drop();
    }
    apply { patch.apply(); }
}
"""

RULES = "Patch(p as bit<16>, PatchActionForward{o as bit<16>}) :- PortCfg(_, p, o)."


def free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def table_state(sim) -> str:
    service = DeviceService(sim)
    entries = []
    for entry in service.read_table("patch"):
        entries.append(
            {
                "matches": [list(m.key()) for m in entry.matches],
                "action": entry.action,
                "params": list(entry.action_params),
                "priority": entry.priority,
            }
        )
    entries.sort(key=lambda e: json.dumps(e, sort_keys=True, default=str))
    return json.dumps(entries, sort_keys=True, default=str)


def seed(transact, n=N_ROWS) -> None:
    for port in range(n):
        transact(
            [
                {
                    "op": "insert",
                    "table": "PortCfg",
                    "row": {"port": port, "out_port": port + 1},
                }
            ]
        )


def wait_until(predicate, timeout=30.0) -> None:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.002)
    raise AssertionError("recovery did not converge in time")


def reference_state():
    project = nerpa_build(SCHEMA, RULES, P4)
    db = Database(project.schema)
    sim = project.new_simulator(n_ports=256)
    controller = NerpaController(project, db, [sim]).start()
    seed(db.transact)
    controller.stop()
    return table_state(sim)


def measure_mgmt_recovery(expected: str) -> float:
    project = nerpa_build(SCHEMA, RULES, P4)
    db = Database(project.schema)
    port = free_port()
    server = ManagementServer(db, port=port).start()
    switch = project.new_simulator(n_ports=256)
    client = ManagementClient("127.0.0.1", port, policy=FAST)
    controller = NerpaController(project, client, [switch]).start()
    try:
        seed(db.transact, N_ROWS // 2)
        server.stop()
        # The controller is deaf while the rest of the model changes.
        seed_rest = range(N_ROWS // 2, N_ROWS)
        for p in seed_rest:
            db.transact(
                [
                    {
                        "op": "insert",
                        "table": "PortCfg",
                        "row": {"port": p, "out_port": p + 1},
                    }
                ]
            )
        started = time.time()
        server = ManagementServer(db, port=port).start()
        wait_until(lambda: table_state(switch) == expected)
        return time.time() - started
    finally:
        controller.stop()
        client.close()
        server.stop()


def measure_device_recovery(expected: str) -> float:
    project = nerpa_build(SCHEMA, RULES, P4)
    db = Database(project.schema)
    sim = project.new_simulator(n_ports=256)
    port = free_port()
    server = P4RuntimeServer(sim, port=port).start()
    device = P4RuntimeClient("127.0.0.1", port, policy=FAST)
    controller = NerpaController(project, db, [device], breaker_threshold=1)
    controller.start()
    try:
        seed(db.transact, N_ROWS // 2)
        server.stop()
        # Changes while down trip the breaker; all must be resynced.
        for p in range(N_ROWS // 2, N_ROWS):
            db.transact(
                [
                    {
                        "op": "insert",
                        "table": "PortCfg",
                        "row": {"port": p, "out_port": p + 1},
                    }
                ]
            )
        wait_until(lambda: controller.devices[0].quarantined)
        started = time.time()
        server = P4RuntimeServer(sim, port=port).start()
        wait_until(lambda: table_state(sim) == expected)
        return time.time() - started
    finally:
        controller.stop()
        device.close()
        server.stop()


def test_r1_recovery_latency(benchmark):
    expected = reference_state()
    mgmt_latency = benchmark.pedantic(
        measure_mgmt_recovery, args=(expected,), rounds=1, iterations=1
    )
    device_latency = measure_device_recovery(expected)

    report(
        f"R1: restart-to-converged latency ({N_ROWS} rows)",
        [
            ("mgmt restart (re-subscribe + reconcile)",
             f"{mgmt_latency * 1e3:.1f} ms"),
            ("device restart (quarantine + full resync)",
             f"{device_latency * 1e3:.1f} ms"),
        ],
        ["fault", "recovery latency"],
    )

    emit(
        "r1", "mgmt_recovery_latency", "seconds",
        round(mgmt_latency, 4), threshold=10.0,
    )
    emit(
        "r1", "device_recovery_latency", "seconds",
        round(device_latency, 4), threshold=10.0,
    )
    # Recovery is dominated by the backoff delay (tens of ms under the
    # bench policy), not by the reconcile itself.
    assert mgmt_latency < 10.0
    assert device_latency < 10.0
