"""E4 — incremental recursive reachability (the §1/§2.2 example).

The paper's motivating algorithm: maintain graph labels (a stand-in for
routing tables) under dynamic edge insertions and deletions.  Claims to
reproduce:

* the declarative program is two rules; the hand-written incremental
  version is the thing that "required several thousand lines" (our
  Python analog is ~150 lines and still needed DRed-style care);
* incremental maintenance does work proportional to the *modified
  state*: on topologies where a change affects a bounded region (trees:
  the affected subtree), per-update latency stays near-flat while full
  recomputation scales with the graph;
* the honest caveat: on densely redundant graphs, DRed's overdeletion
  explores far beyond the net change (a known weakness; Differential
  Datalog's timestamped differential dataflow addresses it).  We
  measure and report that worst case rather than hiding it.
"""

import inspect
import time

from benchmarks.conftest import emit, report
from repro.analysis.loc import count_loc
from repro.baselines import reachability as reach_module
from repro.baselines.reachability import NaiveReachability
from repro.dlog import compile_program
from repro.workloads.topology import random_graph, random_tree

PROGRAM = """
input relation GivenLabel(n: bigint, label: string)
input relation Edge(a: bigint, b: bigint)
output relation Label(n: bigint, label: string)
Label(n, l) :- GivenLabel(n, l).
Label(b, l) :- Label(a, l), Edge(a, b).
"""

TREE_SIZES = [500, 2000, 8000]
N_DELTAS = 25


def _engine_latency(edges, sample=None):
    runtime = compile_program(PROGRAM).start()
    runtime.transaction(inserts={"Edge": edges, "GivenLabel": [(0, "r")]})
    if sample is None:
        sample = edges[:: max(1, len(edges) // N_DELTAS)][:N_DELTAS]
    started = time.perf_counter()
    for a, b in sample:
        runtime.transaction(deletes={"Edge": [(a, b)]})
        runtime.transaction(inserts={"Edge": [(a, b)]})
    return (time.perf_counter() - started) / (2 * len(sample))


def _naive_latency(edges, sample=None):
    naive = NaiveReachability()
    naive.given.add((0, "r"))
    naive.edges.update(edges)
    naive._recompute()
    if sample is None:
        sample = edges[:: max(1, len(edges) // 5)][:5]
    else:
        sample = sample[:5]
    started = time.perf_counter()
    for a, b in sample:
        naive.remove_edge(a, b)
        naive.add_edge(a, b)
    return (time.perf_counter() - started) / (2 * len(sample))


def run_tree_series():
    rows = []
    for n_nodes in TREE_SIZES:
        edges = random_tree(n_nodes, seed=11)
        # Toggle edges deep in the tree: their subtrees (the modified
        # state) are small and independent of the graph size, isolating
        # the "work ~ |modified state|" claim.  Near-root edges would
        # make the modified state itself O(n).
        sample = edges[-N_DELTAS:]
        rows.append(
            (
                n_nodes,
                _engine_latency(edges, sample),
                _naive_latency(edges, sample),
            )
        )
    return rows


def test_e4_localized_changes_scale(benchmark):
    rows = benchmark.pedantic(run_tree_series, rounds=1, iterations=1)

    report(
        "E4: per-edge-update latency on trees (localized changes)",
        [
            (
                n,
                f"{inc * 1e6:.0f} us",
                f"{naive * 1e6:.0f} us",
                f"{naive / inc:.1f}x",
            )
            for n, inc, naive in rows
        ],
        ["nodes", "incremental", "recompute", "speedup"],
    )

    inc_growth = rows[-1][1] / rows[0][1]
    naive_growth = rows[-1][2] / rows[0][2]
    size_growth = TREE_SIZES[-1] / TREE_SIZES[0]
    print(
        f"{size_growth:.0f}x more nodes -> incremental x{inc_growth:.1f}, "
        f"recompute x{naive_growth:.1f}"
    )
    # Work ~ |modified state| (the affected subtree, ~O(log n) expected),
    # not the graph; recompute tracks the graph.
    emit(
        "e4", "incremental_vs_recompute_largest", "speedup_x",
        round(rows[-1][2] / rows[-1][1], 2), threshold=3.0,
    )
    assert inc_growth < size_growth / 2
    assert naive_growth > inc_growth
    assert rows[-1][2] / rows[-1][1] >= 3  # large graphs: clear win


def test_e4_dense_worst_case_reported(benchmark):
    """DRed's documented worst case: highly redundant graphs.

    Overdeletion cascades through the whole reachable region even when
    the net change is empty, so per-update cost approaches recompute
    scale.  We verify the engine stays correct and within a constant
    factor of a full recompute (rather than diverging), and record the
    numbers for EXPERIMENTS.md.
    """
    edges = random_graph(400, 1200, seed=7)
    inc = benchmark.pedantic(_engine_latency, args=(edges,), rounds=1, iterations=1)
    naive = _naive_latency(edges)
    print(
        f"\ndense 1200-edge graph: incremental {inc * 1e3:.2f} ms/update, "
        f"recompute {naive * 1e3:.2f} ms/update "
        f"(ratio {inc / naive:.1f}x - DRed over-deletion, see EXPERIMENTS.md)"
    )
    # Same order of magnitude as recompute (interpreted engine vs tight
    # loop): bounded degradation, not divergence.
    assert inc / naive < 100


def test_e4_loc_comparison(benchmark):
    """Tens of lines declaratively vs hundreds (thousands in Java)."""
    declarative = benchmark(count_loc, PROGRAM, kind="dlog")
    imperative = count_loc(
        inspect.getsource(reach_module.IncrementalReachability), kind="python"
    )
    print(
        f"\ndeclarative: {declarative} lines; hand-written incremental "
        f"(Python): {imperative} lines ({imperative / declarative:.0f}x); "
        "the paper reports 'several thousand' for the Java equivalent"
    )
    assert declarative <= 10
    assert imperative / declarative >= 10
