"""E1 — the paper's §4.3 scalability evaluation.

"We added 2,000 ports to the system.  We then measured the time between
(1) the OVSDB client reading a new port from OVSDB and (2) the data
plane entry being added to the P4 table.  The first time difference
noted was 0.013 seconds, and the last was 0.018 seconds."

Shape to reproduce: per-port sync latency stays ~flat as the system
grows (the paper's first/last ratio is 1.38x).  Absolute numbers differ
(their stack is Rust + OVSDB + BMv2; ours is pure Python), but the
*flatness* is the incrementality claim.
"""

from benchmarks.conftest import emit, report
from repro.analysis.stats import mean, percentile
from repro.apps.snvs import SnvsNetwork
from repro.workloads.ports import port_add_stream

N_PORTS = 2000
N_VLANS = 8


def run_port_scaling():
    net = SnvsNetwork(n_ports=4096)
    for vlan in range(1, N_VLANS + 1):
        net.add_vlan(vlan)
    for port, vlan in port_add_stream(N_PORTS, n_vlans=N_VLANS):
        net.add_access_port(port, vlan=vlan)
    return net


def test_e1_port_scaling(benchmark):
    net = benchmark.pedantic(run_port_scaling, rounds=1, iterations=1)

    # The last N_PORTS syncs are the port adds (earlier ones are the
    # learning-config and VLAN setup transactions).
    latencies = net.controller.sync_latencies[-N_PORTS:]
    assert len(latencies) == N_PORTS
    first, last = latencies[0], latencies[-1]
    window = max(1, N_PORTS // 20)
    head = mean(latencies[:window])
    tail = mean(latencies[-window:])

    report(
        "E1: OVSDB-read -> P4-entry latency over 2,000 port adds",
        [
            ("first port", f"{first * 1e3:.3f} ms", "paper: 13 ms"),
            ("last port", f"{last * 1e3:.3f} ms", "paper: 18 ms"),
            (f"mean first {window}", f"{head * 1e3:.3f} ms", ""),
            (f"mean last {window}", f"{tail * 1e3:.3f} ms", ""),
            ("p99", f"{percentile(latencies, 99) * 1e3:.3f} ms", ""),
            ("tail/head ratio", f"{tail / head:.2f}x", "paper: 1.38x"),
        ],
        ["metric", "measured", "reference"],
    )

    assert len(net.switch.table("in_vlan")) == N_PORTS
    emit(
        "e1", "tail_head_latency_ratio", "ratio_x",
        round(tail / head, 2), threshold=5.0,
    )
    emit(
        "e1", "sync_latency_p99", "seconds",
        round(percentile(latencies, 99), 6),
    )
    # Incrementality: windowed latency growth stays small even after
    # 2,000 ports (allow generous slack for interpreter noise).
    assert tail / head < 5.0


def test_e1_entries_written_scale_with_ports(benchmark):
    def run():
        net = SnvsNetwork(n_ports=512)
        net.add_vlan(1)
        baseline = net.controller.entries_written
        for port in range(100):
            net.add_access_port(port, vlan=1)
        return net.controller.entries_written - baseline

    written = benchmark.pedantic(run, rounds=1, iterations=1)
    # Each port: 1 in_vlan + 1 out_tag entry (multicast is separate
    # config); exactly linear — no rewrite amplification.
    print(f"\nentries written for 100 ports: {written} (expect 200)")
    assert written == 200
