"""A3 — ablation: in-process vs TCP transports on the E1 path.

The stack runs with either in-process plane connections (database and
device in the controller's process — a Nerpa "local control plane") or
over the framed TCP protocols.  This measures what the wire costs on
the port-add sync path.
"""

import time

from benchmarks.conftest import emit, report
from repro.apps.snvs import SnvsNetwork, build_snvs
from repro.core.controller import NerpaController
from repro.mgmt.client import ManagementClient
from repro.mgmt.database import Database
from repro.mgmt.server import ManagementServer
from repro.p4runtime.client import P4RuntimeClient
from repro.p4runtime.server import P4RuntimeServer

N_PORTS = 200


def run_in_process():
    net = SnvsNetwork(n_ports=1024)
    net.add_vlan(1)
    for port in range(N_PORTS):
        net.add_access_port(port, vlan=1)
    latencies = net.controller.sync_latencies[-N_PORTS:]
    return sum(latencies) / len(latencies)


def run_over_tcp():
    project = build_snvs()
    db = Database(project.schema)
    sim = project.new_simulator(n_ports=1024)
    with ManagementServer(db) as mgmt_srv, P4RuntimeServer(sim) as dev_srv:
        mgmt_client = ManagementClient(*mgmt_srv.address)
        dev_client = P4RuntimeClient(*dev_srv.address)
        controller = NerpaController(project, mgmt_client, [dev_client]).start()
        try:
            mgmt_client.transact(
                [
                    {"op": "insert", "table": "Vlan",
                     "row": {"vid": 1, "description": ""}},
                    {"op": "insert", "table": "SwitchConfig",
                     "row": {"name": "s", "learning_enabled": True}},
                ]
            )
            for port in range(N_PORTS):
                mgmt_client.transact(
                    [
                        {
                            "op": "insert",
                            "table": "Port",
                            "row": {
                                "name": f"p{port}",
                                "port_num": port,
                                "vlan_mode": "access",
                                "tag": 1,
                            },
                        }
                    ]
                )
            deadline = time.time() + 30.0
            while time.time() < deadline:
                if len(sim.table("in_vlan")) == N_PORTS:
                    break
                time.sleep(0.005)
            assert len(sim.table("in_vlan")) == N_PORTS
            controller.drain()
            latencies = controller.sync_latencies[-N_PORTS:]
            return sum(latencies) / len(latencies)
        finally:
            controller.stop()
            mgmt_client.close()
            dev_client.close()


def test_a3_transport_overhead(benchmark):
    local = benchmark.pedantic(run_in_process, rounds=1, iterations=1)
    remote = run_over_tcp()

    report(
        f"A3: mean sync latency over {N_PORTS} port adds",
        [
            ("in-process", f"{local * 1e3:.3f} ms"),
            ("TCP (both planes)", f"{remote * 1e3:.3f} ms"),
            ("wire overhead", f"{remote / local:.1f}x"),
        ],
        ["transport", "latency"],
    )

    # The wire costs something but stays the same order of magnitude as
    # the paper's 13-18 ms end-to-end numbers; and in-process is faster.
    emit(
        "a3", "tcp_sync_latency", "mean_seconds",
        round(remote, 6), threshold=0.05,
    )
    assert remote > local
    assert remote < 0.05  # well under the paper's measured absolute latency
