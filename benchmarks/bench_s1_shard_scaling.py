"""S1 — evaluate-stage scaling: E5 churn across 1/2/4/8 shards.

The headline number for `repro.dlog.shard`: the Robotron churn mix
(70% retags/moves, 15% adds, 15% removes) driven through a
vlan-partitioned derivation — a join plus a per-vlan aggregate, so each
transaction does real per-shard evaluation work — at increasing shard
counts with process workers.

Correctness is asserted unconditionally: every shard count must land on
exactly the single-engine final state (the differential oracle in
``tests/test_differential.py`` is the fine-grained version of this
check).  The throughput assertion (4 shards ≥ 2.5x single-shard) only
runs on machines with ≥ 4 cores — shards are processes, and on a 1-core
container the parallel configurations time-slice one core plus pay the
exchange overhead, which measures the scheduler, not the design.
"""

import os
import time

from benchmarks.conftest import emit, report
from repro.dlog import compile_program
from repro.workloads.churn import robotron_churn

N_PORTS = 1500
N_VLANS = 64
N_EVENTS = 480
EVENTS_PER_TXN = 24
SHARD_COUNTS = (1, 2, 4, 8)

# Partition-friendly derivation: everything keys on the vlan, so the
# plan partitions Port/Trunk by vlan and each shard owns its vlans'
# joins and aggregates end to end.  Flood is the work amplifier — the
# per-vlan self-join makes each retag touch O(vlan size) derived rows,
# so per-shard evaluation dominates the exchange/merge overhead the
# facade adds.
PROGRAM = """
input relation Port(port: bigint, vlan: bigint)
input relation Trunk(vlan: bigint, uplink: bigint)
output relation Uplinked(port: bigint, uplink: bigint)
output relation VlanSize(vlan: bigint, n: bigint)
output relation Flood(vlan: bigint, src: bigint, dst: bigint)
Uplinked(p, u) :- Port(p, v), Trunk(v, u).
VlanSize(v, n) :- Port(p, v), var n = Aggregate((v), count()).
Flood(v, p1, p2) :- Port(p1, v), Port(p2, v), p1 != p2.
"""

OUTPUTS = ("Uplinked", "VlanSize", "Flood")


def _batches(seed):
    """The churn stream as per-transaction (inserts, deletes) pairs.

    Events are pre-translated against a reference port→vlan map so
    every runtime configuration replays the identical transaction
    sequence."""
    state = {p: 1 + (p % N_VLANS) for p in range(N_PORTS)}
    batches = []
    events = list(robotron_churn(N_PORTS, N_VLANS, N_EVENTS, seed=seed))
    for start in range(0, len(events), EVENTS_PER_TXN):
        inserts, deletes = [], []
        for event in events[start : start + EVENTS_PER_TXN]:
            if event.kind == "add_port":
                if event.port in state:
                    continue
                inserts.append((event.port, event.vlan))
                state[event.port] = event.vlan
            elif event.kind == "del_port":
                if event.port in state:
                    deletes.append((event.port, state.pop(event.port)))
            else:  # retag/move: the cross-shard row movement case
                if event.port in state:
                    deletes.append((event.port, state[event.port]))
                    inserts.append((event.port, event.vlan))
                    state[event.port] = event.vlan
        batches.append((inserts, deletes))
    return batches


def _run_one(shards, batches):
    program = compile_program(PROGRAM)
    if shards == 1:
        runtime = program.start()
    else:
        runtime = program.start(shards=shards, shard_workers="process")
    try:
        runtime.transaction(
            inserts={
                "Port": [(p, 1 + (p % N_VLANS)) for p in range(N_PORTS)],
                "Trunk": [(v, 1000 + v) for v in range(1, N_VLANS + 1)],
            }
        )
        started = time.perf_counter()
        for inserts, deletes in batches:
            runtime.transaction(
                inserts={"Port": inserts}, deletes={"Port": deletes}
            )
        elapsed = time.perf_counter() - started
        final = {rel: runtime.dump(rel) for rel in OUTPUTS}
    finally:
        runtime.close()
    return elapsed, final


def run_scaling(seed=0):
    batches = _batches(seed)
    results = {}
    for shards in SHARD_COUNTS:
        results[shards] = _run_one(shards, batches)
    return results


def test_s1_shard_scaling(benchmark, bench_seed):
    results = benchmark.pedantic(
        run_scaling, args=(bench_seed,), rounds=1, iterations=1
    )

    base_elapsed, base_state = results[1]
    rows = []
    for shards in SHARD_COUNTS:
        elapsed, state = results[shards]
        # Shard count must be unobservable in the final state.
        assert state == base_state, f"{shards}-shard state diverged"
        rows.append(
            (
                shards,
                f"{elapsed * 1e3:.1f} ms",
                f"{N_EVENTS / elapsed:.0f} ev/s",
                f"{base_elapsed / elapsed:.2f}x",
            )
        )
    report(
        f"S1: {N_EVENTS} churn events, {N_PORTS} ports, "
        f"{N_VLANS} vlans, process workers",
        rows,
        ["shards", "elapsed", "throughput", "speedup"],
    )

    cores = os.cpu_count() or 1
    emit(
        "s1", "four_shard_speedup", "speedup_x",
        round(results[1][0] / results[4][0], 2), threshold=2.5,
        cores=cores,
    )
    if cores >= 4:
        speedup = results[1][0] / results[4][0]
        assert speedup >= 2.5, (
            f"4-shard speedup {speedup:.2f}x < 2.5x on {cores} cores"
        )
    else:
        print(
            f"({cores} core(s): correctness asserted, ≥2.5x speedup "
            "assertion needs ≥4 cores)"
        )
