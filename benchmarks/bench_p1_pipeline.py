"""P1 — pipeline: slow-device isolation and write batching.

Drives multi-device churn through the staged pipeline with one
fault-injected high-latency device and measures the two properties the
pipeline exists for:

* **isolation** — a slow device backs up only its own writer queue, so
  the healthy devices' end-to-end sync latency stays within 2x of an
  all-healthy run;
* **batching** — with queue-tail coalescing on, a backlog behind the
  slow device collapses into a handful of batched wire writes, so
  churn throughput is a multiple of the unbatched (one write per
  engine transaction) baseline.
"""

import time

from benchmarks.conftest import emit, report
from repro.core.controller import NerpaController
from repro.core.pipeline import nerpa_build
from repro.mgmt.database import Database
from repro.mgmt.schema import simple_schema
from repro.p4runtime.api import DeviceService
from repro.workloads.churn import robotron_churn

N_PORTS = 8
N_VLANS = 50
N_EVENTS = 60
CHURN_SEED = 42
SLOW_DELAY = 0.05  # the fault-injected device's per-write latency

SCHEMA = simple_schema(
    "net", {"PortCfg": {"port": "integer", "out_port": "integer"}}
)

P4 = """
header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
struct headers_t { eth_t eth; }
struct meta_t { bit<1> pad; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
         inout standard_metadata_t std) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control Ing(inout headers_t hdr, inout meta_t m,
            inout standard_metadata_t std) {
    action forward(bit<16> port) { std.egress_spec = port; }
    action drop() { mark_to_drop(); }
    table patch {
        key = { std.ingress_port : exact; }
        actions = { forward; drop; }
        default_action = drop();
    }
    apply { patch.apply(); }
}
"""

RULES = "Patch(p as bit<16>, PatchActionForward{o as bit<16>}) :- PortCfg(_, p, o)."


class SlowService(DeviceService):
    """Fault-injected device: fixed latency per write round trip."""

    def __init__(self, sim, delay=SLOW_DELAY):
        super().__init__(sim)
        self.delay = delay

    def apply_batch(self, updates, mcast=None):
        time.sleep(self.delay)
        return super().apply_batch(updates, mcast)


def churn(transact) -> None:
    for event in robotron_churn(N_PORTS, N_VLANS, N_EVENTS, seed=CHURN_SEED):
        if event.kind == "add_port":
            transact(
                [
                    {
                        "op": "insert",
                        "table": "PortCfg",
                        "row": {"port": event.port, "out_port": event.vlan},
                    }
                ]
            )
        elif event.kind == "del_port":
            transact(
                [
                    {
                        "op": "delete",
                        "table": "PortCfg",
                        "where": [["port", "==", event.port]],
                    }
                ]
            )
        else:
            transact(
                [
                    {
                        "op": "update",
                        "table": "PortCfg",
                        "where": [["port", "==", event.port]],
                        "row": {"out_port": event.vlan},
                    }
                ]
            )


def run_churn(slow: bool, coalesce: bool = True):
    """One churn run; returns (healthy mean latency, elapsed, metrics)."""
    project = nerpa_build(SCHEMA, RULES, P4)
    db = Database(project.schema)
    devices = [project.new_simulator(n_ports=64) for _ in range(2)]
    if slow:
        devices.append(SlowService(project.new_simulator(n_ports=64)))
    else:
        devices.append(project.new_simulator(n_ports=64))
    controller = NerpaController(project, db, devices, coalesce=coalesce)
    controller.start()
    try:
        started = time.perf_counter()
        churn(db.transact)
        controller.drain()
        elapsed = time.perf_counter() - started
    finally:
        controller.stop()
    healthy = [
        lat for dev in controller.devices[:2] for lat in dev.latencies
    ]
    return (
        sum(healthy) / len(healthy),
        elapsed,
        controller.metrics()["pipeline"],
    )


def test_p1_pipeline_isolation_and_batching(benchmark):
    clean_latency, _, _ = benchmark.pedantic(
        lambda: run_churn(slow=False), rounds=1, iterations=1
    )
    faulty_latency, batched_elapsed, batched = run_churn(slow=True)
    _, unbatched_elapsed, unbatched = run_churn(slow=True, coalesce=False)

    batched_tput = N_EVENTS / batched_elapsed
    unbatched_tput = N_EVENTS / unbatched_elapsed
    slow_name = "device-2"

    report(
        f"P1: {N_EVENTS}-event churn over 3 devices, one with "
        f"{SLOW_DELAY * 1e3:.0f} ms write latency",
        [
            ("healthy-device latency (all healthy)",
             f"{clean_latency * 1e3:.3f} ms"),
            ("healthy-device latency (one slow)",
             f"{faulty_latency * 1e3:.3f} ms"),
            ("slow-device round trips (batched)",
             batched["device_writes_issued"][slow_name]),
            ("slow-device round trips (unbatched)",
             unbatched["device_writes_issued"][slow_name]),
            ("churn throughput (batched)", f"{batched_tput:.0f} ev/s"),
            ("churn throughput (unbatched)", f"{unbatched_tput:.0f} ev/s"),
        ],
        ["measure", "value"],
    )

    # Isolation: the slow device backs up only its own queue.  Healthy
    # latency stays within 2x of the all-healthy run (the floor guards
    # against sub-millisecond scheduler noise; contamination by the
    # slow device would show up as whole 50 ms round trips).
    assert faulty_latency <= max(2 * clean_latency, SLOW_DELAY / 2)

    # Batching: coalescing collapses the backlog behind the slow device
    # into far fewer round trips and a multiple of the throughput.
    emit(
        "p1", "batched_vs_unbatched_throughput", "ratio_x",
        round(batched_tput / unbatched_tput, 2), threshold=2.0,
    )
    assert batched["device_writes_issued"][slow_name] < N_EVENTS / 2
    assert batched_tput > 2 * unbatched_tput
