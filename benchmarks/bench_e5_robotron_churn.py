"""E5 — production-like configuration churn (the Robotron numbers, §2.1).

"Each day on average, more than 50 lines change across models ...
backbone devices average a dozen changes per week, with over 150 lines
updated per change.  These require continuous re-configurations and are
updated incrementally."

We drive the snvs-style derivation with the Robotron churn mix (70%
attribute updates, 15% adds, 15% removes) at two network sizes and
check the §2.1 claim: the incremental controller's cost tracks the
*churn*, the recompute controller's cost tracks the *network*.
"""

import time

from benchmarks.conftest import emit, report
from repro.baselines.full_recompute import FullRecomputeController
from repro.dlog import compile_program
from repro.workloads.churn import robotron_churn

N_VLANS = 16
N_EVENTS = 150

PROGRAM = """
input relation Port(port: bigint, vlan: bigint)
output relation InVlan(port: bigint, vlan: bigint)
output relation Flood(vlan: bigint, port: bigint)
InVlan(p, v) :- Port(p, v).
Flood(v, p) :- Port(p, v).
"""


def derive(config):
    out = set()
    for port, vlan in config.get("Port", set()):
        out.add(("in_vlan", port, vlan))
        out.add(("flood", vlan, port))
    return out


def _apply_churn(apply_fn, state, events):
    """Translate churn events into row deltas; time only apply_fn."""
    total = 0.0
    for event in events:
        deletes, inserts = [], []
        if event.kind == "add_port":
            inserts.append((event.port, event.vlan))
        elif event.kind == "del_port":
            if event.port in state:
                deletes.append((event.port, state.pop(event.port)))
        else:  # retag/move: attribute update
            if event.port in state:
                deletes.append((event.port, state[event.port]))
                inserts.append((event.port, event.vlan))
        for port, vlan in inserts:
            state[port] = vlan
        started = time.perf_counter()
        apply_fn(inserts, deletes)
        total += time.perf_counter() - started
    return total


def _run_pair(n_ports):
    initial = [(p, 1 + (p % N_VLANS)) for p in range(n_ports)]

    runtime = compile_program(PROGRAM).start()
    runtime.transaction(inserts={"Port": initial})
    state = dict(initial)
    events = list(robotron_churn(n_ports, N_VLANS, N_EVENTS, seed=3))
    inc_cpu = _apply_churn(
        lambda ins, dels: runtime.transaction(
            inserts={"Port": ins}, deletes={"Port": dels}
        ),
        state,
        events,
    )

    controller = FullRecomputeController(derive)
    controller.apply_change(inserts={"Port": initial})
    state = dict(initial)
    events = list(robotron_churn(n_ports, N_VLANS, N_EVENTS, seed=3))
    full_cpu = _apply_churn(
        lambda ins, dels: controller.apply_change(
            inserts={"Port": ins}, deletes={"Port": dels}
        ),
        state,
        events,
    )
    return inc_cpu, full_cpu


def run_churn_comparison():
    return {n_ports: _run_pair(n_ports) for n_ports in (500, 2000)}


def test_e5_robotron_churn(benchmark):
    results = benchmark.pedantic(run_churn_comparison, rounds=1, iterations=1)

    rows = []
    for n_ports, (inc, full) in results.items():
        rows.append(
            (
                n_ports,
                f"{inc * 1e3:.1f} ms",
                f"{full * 1e3:.1f} ms",
                f"{full / inc:.1f}x",
            )
        )
    report(
        f"E5: CPU for {N_EVENTS} Robotron-style changes",
        rows,
        ["ports", "incremental", "recompute", "ratio"],
    )

    inc_small, full_small = results[500]
    inc_large, full_large = results[2000]
    print(
        f"4x network growth: incremental cost x{inc_large / inc_small:.2f}, "
        f"recompute cost x{full_large / full_small:.2f}"
    )
    # Incremental cost ~ churn (flat in network size, generous bound);
    # recompute cost ~ network size.
    emit(
        "e5", "incremental_vs_recompute_2000_ports", "speedup_x",
        round(full_large / inc_large, 2), threshold=5.0,
    )
    assert inc_large / inc_small < 2.5
    assert full_large / full_small > 2.0
    assert full_large / inc_large > 5.0
