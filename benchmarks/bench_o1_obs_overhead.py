"""O1 — observability overhead on the E2 incremental workload.

The tentpole requirement for `repro.obs`: telemetry must be effectively
free when disabled (one global flag check per instrumentation site) and
the standard enabled tier must add under 10% latency on the
steady-state change stream of ``bench_e2_incremental_gain``, so it can
stay on in production the way INT-style data-plane telemetry is
always-on.

Four configurations are measured:

* **disabled** (twice — the repeat bounds the noise floor that "~0%"
  is judged against);
* **enabled**: spans + all counters/histograms.  Engine transactions
  record their latency histogram always, and a trace span whenever the
  transaction is part of a causal trace (an enclosing span or
  update-id); this workload drives the Runtime directly, so it pays
  the always-on price — the <10% acceptance bound;
* **enabled, in-trace**: the same run under a bound update-id, so every
  transaction also records its span — the price a traced config change
  pays end-to-end;
* **detail** (``obs.enable(detail=True)``): additionally times every
  dataflow operator inside each transaction.  On this workload each
  transaction does only microseconds of real work, so per-node
  bookkeeping costs on the order of the transaction itself — a
  diagnosis mode, reported but not held to the always-on budget.

Methodology: the per-change latencies returned by ``run_incremental``
measure only the engine transactions (setup excluded); each
configuration's rounds are interleaved with the others and the best
round is kept, which cancels slow drift in machine load.
"""

from benchmarks.bench_e2_incremental_gain import N_CHANGES, N_PORTS, run_incremental
from benchmarks.conftest import emit, report
from repro import obs

ROUNDS = 6


def _mean_change_latency() -> float:
    latencies = run_incremental()
    return sum(latencies) / len(latencies)


def _measure_all() -> dict:
    """One interleaved sweep over all configurations, best-of-rounds."""
    best = {}

    def sample(key, configure, run=_mean_change_latency):
        configure()
        obs.reset()
        value = run()
        if key not in best or value < best[key]:
            best[key] = value

    def traced_run():
        with obs.use_update_id(obs.mint_update_id()):
            return _mean_change_latency()

    for _ in range(ROUNDS):
        sample("disabled_a", obs.disable)
        sample("enabled", obs.enable)
        sample("in_trace", obs.enable, traced_run)
        sample("detail", lambda: obs.enable(detail=True))
        sample("disabled_b", obs.disable)
    return best


def test_o1_observability_overhead(benchmark):
    try:
        best = benchmark.pedantic(_measure_all, rounds=1, iterations=1)

        # One more enabled run to show the telemetry actually collected.
        obs.enable(detail=True)
        obs.reset()
        with obs.use_update_id(obs.mint_update_id()):
            _mean_change_latency()
        spans = len(obs.TRACER.spans())
        txns = obs.REGISTRY.histogram("engine_txn_seconds").count
    finally:
        obs.disable()
        obs.reset()

    base = min(best["disabled_a"], best["disabled_b"])
    noise = abs(best["disabled_b"] - best["disabled_a"]) / base
    enabled = best["enabled"] / base - 1.0
    in_trace = best["in_trace"] / base - 1.0
    detail = best["detail"] / base - 1.0

    report(
        f"O1: observability overhead ({N_PORTS} ports, "
        f"{N_CHANGES} changes/round)",
        [
            ("disabled mean/change", f"{base * 1e6:.1f} us", ""),
            ("disabled repeat delta", f"{noise * 100:.1f} %", "~0% target"),
            ("enabled overhead", f"{enabled * 100:.1f} %", "<10% target"),
            ("enabled in-trace overhead", f"{in_trace * 100:.1f} %",
             "span per txn"),
            ("detail overhead", f"{detail * 100:.1f} %", "diagnosis tier"),
            ("spans recorded", str(spans), ""),
            ("engine txns counted", str(txns), ""),
        ],
        ["metric", "measured", "reference"],
    )

    # The enabled run actually collected telemetry...
    assert txns >= N_CHANGES
    assert spans >= N_CHANGES
    emit(
        "o1", "enabled_overhead", "fraction",
        round(enabled, 4), threshold=0.10,
    )
    # ...the disabled path is indistinguishable from run-to-run noise...
    assert noise < 0.10
    # ...the always-on tier stays under the acceptance budget...
    assert enabled < 0.10
    # ...a full per-transaction trace stays modest...
    assert in_trace < 0.25
    # ...and even per-operator profiling costs less than one extra
    # transaction's worth of work per transaction.
    assert detail < 1.0
