"""FIG3 — OVN controller codebase and OpenFlow fragment growth.

Paper artifact: Figure 3 ("The growth of OVN's controller codebase and
the number of OpenFlow fragments over time").  Shape to reproduce: both
curves grow together over releases (near-perfect correlation), and the
equivalent Nerpa program stays roughly an order of magnitude smaller
with near-flat per-feature cost.
"""

from benchmarks.conftest import emit, report
from repro.apps.ovn_model import correlation, simulate_growth
from repro.apps.snvs import build_snvs
from repro.p4.openflow import compile_to_openflow


def test_fig3_growth_series(benchmark):
    points = benchmark(simulate_growth)

    report(
        "FIG3: OVN-like controller growth per release",
        [
            (p.release, p.n_features, p.imperative_loc, p.fragments, p.nerpa_loc)
            for p in points
        ],
        ["release", "features", "imperative LoC", "OF fragments", "nerpa LoC"],
    )
    r = correlation(
        [float(p.imperative_loc) for p in points],
        [float(p.fragments) for p in points],
    )
    final = points[-1]
    ratio = final.imperative_loc / final.nerpa_loc
    print(f"correlation(LoC, fragments) = {r:.4f}   (paper: curves track)")
    print(f"imperative/Nerpa final ratio = {ratio:.1f}x  (paper: >= 10x)")

    emit(
        "fig3", "imperative_vs_nerpa_loc", "ratio_x",
        round(ratio, 1), threshold=8,
    )
    assert r > 0.97
    assert ratio >= 8
    # Growth is monotone, like the figure.
    locs = [p.imperative_loc for p in points]
    assert locs == sorted(locs)


def test_fig3_fragments_of_real_pipeline(benchmark):
    """Ground the fragment metric: count real fragments produced by
    lowering our actual snvs pipeline with the p4c-of analog."""
    project = build_snvs()

    program = benchmark(compile_to_openflow, project.pipeline)
    print(
        f"\nsnvs pipeline lowers to {program.fragment_count} OpenFlow "
        f"fragments across {len(program.table_ids)} tables"
    )
    # 7 tables, each with 2-3 actions.
    assert 12 <= program.fragment_count <= 30
