"""T1 — the §4.3 lines-of-code accounting.

"snvs consists of 350 LOC of DDlog (250 of rules, 100 of generated
relations); 300 of P4; 5 OVSDB tables with 2-5 fields each; and 50 of
generated Rust glue code.  700 total LOC is at least an order of
magnitude less than an incremental implementation of similar features
in Java or C."

We count our actual artifacts the same way and compare against the
hand-written imperative controller implementing the same features
(:mod:`repro.baselines.imperative`) — noting that the imperative
baseline *still* omits everything Nerpa generates (protocol glue, type
conversion, device synchronization).
"""

import inspect

from benchmarks.conftest import emit, report
from repro.analysis.loc import count_loc
from repro.apps.snvs import SNVS_DLOG, SNVS_P4, build_snvs
from repro.baselines import imperative


def test_t1_loc_accounting(benchmark):
    project = benchmark(build_snvs)

    rules_loc = count_loc(SNVS_DLOG, kind="dlog")
    generated_loc = count_loc(project.generated_source, kind="dlog")
    p4_loc = count_loc(SNVS_P4, kind="p4")
    n_tables = len(project.schema.tables)
    glue_loc = 0  # Nerpa generates all conversion glue at runtime
    total = rules_loc + generated_loc + p4_loc + glue_loc

    imperative_loc = count_loc(inspect.getsource(imperative), kind="python")

    report(
        "T1: snvs artifact sizes (non-blank, non-comment lines)",
        [
            ("dlog rules (hand-written)", rules_loc, "paper: 250"),
            ("dlog relations (generated)", generated_loc, "paper: 100"),
            ("P4 program", p4_loc, "paper: 300"),
            ("OVSDB tables", n_tables, "paper: 5"),
            ("hand-written glue", glue_loc, "paper: 50 (generated)"),
            ("TOTAL declarative", total, "paper: ~700"),
            ("imperative controller (same features)", imperative_loc, ""),
            (
                "imperative / hand-written-rules ratio",
                f"{imperative_loc / rules_loc:.1f}x",
                "paper: >= 10x",
            ),
        ],
        ["artifact", "LoC", "paper"],
    )

    assert n_tables == 5
    assert rules_loc < 60  # declarative core stays tiny
    assert 100 <= p4_loc <= 350  # same ballpark as the paper's 300
    # The paper's headline: the imperative equivalent of just the rule
    # logic is an order of magnitude bigger.
    emit(
        "t1", "imperative_vs_rules_loc", "ratio_x",
        round(imperative_loc / rules_loc, 1), threshold=5,
    )
    assert imperative_loc / rules_loc >= 5
    # And the whole declarative stack stays under the paper's 700-line
    # budget even including generated text.
    assert total <= 700
