"""Shared helpers for the benchmark harness.

Every bench prints a paper-style results block (series/rows matching
the corresponding table or figure) in addition to pytest-benchmark's
timing output, so `pytest benchmarks/ --benchmark-only -s` regenerates
the evaluation artifacts directly.

Workload seeds are deterministic by default (every bench that takes the
``bench_seed`` fixture gets 0) so CI numbers compare run-to-run; pass
``--bench-seed N`` or set ``BENCH_SEED=N`` to explore other workload
draws, and copy the ``reproduce with`` line a bench prints to replay a
specific one.
"""

from __future__ import annotations

import os

import pytest


def report(title: str, rows, columns) -> None:
    """Print one experiment's results table."""
    print(f"\n=== {title} ===")
    header = " | ".join(f"{c:>18}" for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print(" | ".join(f"{str(v):>18}" for v in row))


def pytest_addoption(parser):
    parser.addoption(
        "--bench-seed",
        type=int,
        default=None,
        help="workload seed for randomized benchmarks "
        "(default: $BENCH_SEED, then 0)",
    )


@pytest.fixture
def bench_seed(request):
    """The workload seed, with its provenance printed for replay."""
    option = request.config.getoption("--bench-seed")
    if option is not None:
        seed = option
    else:
        seed = int(os.environ.get("BENCH_SEED", "0"))
    print(f"\nreproduce with: --bench-seed {seed}")
    return seed
