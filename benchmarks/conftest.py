"""Shared helpers for the benchmark harness.

Every bench prints a paper-style results block (series/rows matching
the corresponding table or figure) in addition to pytest-benchmark's
timing output, so `pytest benchmarks/ --benchmark-only -s` regenerates
the evaluation artifacts directly.

Workload seeds are deterministic by default (every bench that takes the
``bench_seed`` fixture gets 0) so CI numbers compare run-to-run; pass
``--bench-seed N`` or set ``BENCH_SEED=N`` to explore other workload
draws, and copy the ``reproduce with`` line a bench prints to replay a
specific one.
"""

from __future__ import annotations

import json
import os

import pytest

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None

#: Fleet-scale benches hold two sockets per simulated device (client +
#: farm side) in one process; 1k devices needs headroom well past the
#: common 1024 default.
_WANT_NOFILE = 8192


def _ensure_nofile(n: int) -> bool:
    """Raise the soft RLIMIT_NOFILE toward ``n``; True if we got it."""
    if resource is None:
        return True  # no rlimits on this platform; let the bench try
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft >= n:
        return True
    target = n if hard == resource.RLIM_INFINITY else min(n, hard)
    try:
        resource.setrlimit(resource.RLIMIT_NOFILE, (target, hard))
    except (ValueError, OSError):
        return False
    return resource.getrlimit(resource.RLIMIT_NOFILE)[0] >= n


def pytest_configure(config):
    # Best-effort bump up front so every bench sees the raised limit.
    _ensure_nofile(_WANT_NOFILE)


@pytest.fixture
def require_nofile():
    """Skip (with the fix spelled out) when fd headroom can't be had."""

    def require(n: int) -> None:
        if not _ensure_nofile(n):
            soft = resource.getrlimit(resource.RLIMIT_NOFILE)[0]
            pytest.skip(
                f"needs RLIMIT_NOFILE >= {n} (soft limit is {soft}); "
                f"raise it with `ulimit -n {n}` and rerun"
            )

    return require


def report(title: str, rows, columns) -> None:
    """Print one experiment's results table."""
    print(f"\n=== {title} ===")
    header = " | ".join(f"{c:>18}" for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print(" | ".join(f"{str(v):>18}" for v in row))


def emit(
    bench_id: str,
    name: str,
    metric: str,
    value,
    threshold=None,
    **extra,
) -> str:
    """Write one machine-readable result as ``BENCH_<id>.json``.

    Every bench emits (at least) one of these so CI can gate on and
    archive the headline number without scraping stdout.  ``metric``
    names the unit/direction (e.g. ``speedup_x``, ``p95_seconds``);
    ``threshold`` is the gate the bench itself asserts, recorded so the
    artifact is self-describing.  Repeat calls with the same
    ``bench_id`` accumulate under a ``results`` list in one file.
    Files land in ``$BENCH_JSON_DIR`` (default: current directory).
    Returns the path written.
    """
    directory = os.environ.get("BENCH_JSON_DIR", ".")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{bench_id}.json")
    entry = {"name": name, "metric": metric, "value": value}
    if threshold is not None:
        entry["threshold"] = threshold
    entry.update(extra)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        if doc.get("bench") != bench_id or not isinstance(
            doc.get("results"), list
        ):
            doc = None
    except (OSError, ValueError):
        doc = None
    if doc is None:
        doc = {"bench": bench_id, "results": []}
    doc["results"] = [
        r for r in doc["results"] if r.get("name") != name
    ] + [entry]
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def pytest_addoption(parser):
    parser.addoption(
        "--bench-seed",
        type=int,
        default=None,
        help="workload seed for randomized benchmarks "
        "(default: $BENCH_SEED, then 0)",
    )


@pytest.fixture
def bench_seed(request):
    """The workload seed, with its provenance printed for replay."""
    option = request.config.getoption("--bench-seed")
    if option is not None:
        seed = option
    else:
        seed = int(os.environ.get("BENCH_SEED", "0"))
    print(f"\nreproduce with: --bench-seed {seed}")
    return seed
