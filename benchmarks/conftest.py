"""Shared helpers for the benchmark harness.

Every bench prints a paper-style results block (series/rows matching
the corresponding table or figure) in addition to pytest-benchmark's
timing output, so `pytest benchmarks/ --benchmark-only -s` regenerates
the evaluation artifacts directly.
"""

from __future__ import annotations


def report(title: str, rows, columns) -> None:
    """Print one experiment's results table."""
    print(f"\n=== {title} ===")
    header = " | ".join(f"{c:>18}" for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print(" | ".join(f"{str(v):>18}" for v in row))
