"""A1 — ablation: arranged (indexed) joins vs. re-scanning joins.

DESIGN.md calls out maintained arrangements as the engine's core design
choice: a delta on one join input only probes the matching key of the
other side.  The ablation replaces the arrangement with the naive
alternative (keep both inputs as flat Z-sets, rescan on every delta)
and measures single-row update latency as the relation grows.
"""

import time
from typing import List, Optional

from benchmarks.conftest import emit, report
from repro.dlog.dataflow.operators import JoinNode, Node, _port
from repro.dlog.dataflow.zset import ZSet

SIZES = [1000, 4000, 16000]
N_DELTAS = 40


class RescanJoinNode(Node):
    """The ablated join: correct, but O(|input|) per delta."""

    n_ports = 2

    def __init__(self, left_key, right_key, merge):
        super().__init__("rescan-join")
        self.left_key = left_key
        self.right_key = right_key
        self.merge = merge
        self.left = ZSet()
        self.right = ZSet()

    def process(self, deltas: List[Optional[ZSet]]) -> ZSet:
        dl, dr = _port(deltas, 0), _port(deltas, 1)
        out = ZSet()
        self.right.merge(dr)
        for lrec, lw in dl.items():
            key = self.left_key(lrec)
            for rrec, rw in self.right.items():  # full scan
                if self.right_key(rrec) == key:
                    merged = self.merge(lrec, rrec)
                    if merged is not None:
                        out.add(merged, lw * rw)
        for rrec, rw in dr.items():
            key = self.right_key(rrec)
            for lrec, lw in self.left.items():  # full scan
                if self.left_key(lrec) == key:
                    merged = self.merge(lrec, rrec)
                    if merged is not None:
                        out.add(merged, lw * rw)
        self.left.merge(dl)
        return out


def _drive(node, n_rows):
    # Key space scales with the relation so each key's bucket stays
    # ~10 rows: the matched output per delta is constant, isolating
    # lookup cost from result-size cost.
    n_keys = max(1, n_rows // 10)
    left = ZSet({(i, i % n_keys): 1 for i in range(n_rows)})
    right = ZSet({(i % n_keys, i): 1 for i in range(n_rows)})
    node.process([left, right])
    started = time.perf_counter()
    for i in range(N_DELTAS):
        delta = ZSet({(n_rows + i, (n_rows + i) % n_keys): 1})
        node.process([delta, None])
    return (time.perf_counter() - started) / N_DELTAS


def make_arranged():
    return JoinNode(lambda a: a[1], lambda b: b[0], lambda a, b: (a[0], b[1]))


def make_rescan():
    return RescanJoinNode(lambda a: a[1], lambda b: b[0], lambda a, b: (a[0], b[1]))


def run_ablation():
    rows = []
    for n_rows in SIZES:
        arranged = _drive(make_arranged(), n_rows)
        rescan = _drive(make_rescan(), n_rows)
        rows.append((n_rows, arranged, rescan))
    return rows


def test_a1_arrangement_ablation(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    report(
        "A1: single-delta join latency, arranged vs rescan",
        [
            (n, f"{a * 1e6:.0f} us", f"{r * 1e6:.0f} us", f"{r / a:.0f}x")
            for n, a, r in rows
        ],
        ["rows", "arranged", "rescan", "speedup"],
    )

    # Arranged latency is ~flat in relation size; rescan scales with it.
    arranged_growth = rows[-1][1] / rows[0][1]
    rescan_growth = rows[-1][2] / rows[0][2]
    emit(
        "a1", "arranged_vs_rescan_largest", "speedup_x",
        round(rows[-1][2] / rows[-1][1], 1), threshold=20,
    )
    assert arranged_growth < 4
    assert rescan_growth > 4
    assert rows[-1][2] / rows[-1][1] > 20


def test_a1_same_results(benchmark):
    """The ablation must not change semantics."""
    arranged, rescan = benchmark.pedantic(
        lambda: (make_arranged(), make_rescan()), rounds=1, iterations=1
    )
    batches = [
        ({(1, 5): 1, (2, 6): 1}, {(5, 10): 1}),
        ({(3, 5): 1}, {(6, 11): 1, (5, 12): 1}),
        ({(1, 5): -1}, {(5, 10): -1}),
    ]
    acc_a, acc_b = ZSet(), ZSet()
    for dl, dr in batches:
        acc_a.merge(arranged.process([ZSet(dict(dl)), ZSet(dict(dr))]))
        acc_b.merge(rescan.process([ZSet(dict(dl)), ZSet(dict(dr))]))
    assert acc_a == acc_b
