"""F1 — fleet fan-out: per-device writer threads vs the multiplexed plane.

The apply plane's scaling claim: stage 3 should reach a thousand
switches from one event loop, not a thousand writer/reader thread
pairs.  Two experiments against a :class:`DeviceFarm` (itself
reactor-based, with ``n_reactors`` loops so the *simulated* fleet
doesn't serialize what real parallel switches would not):

* **plane comparison** (100 devices): the same Robotron churn through
  ``apply_plane="threads"`` and ``apply_plane="aio"`` — wall time,
  events/s, peak OS threads, RSS.  The threaded plane costs ~3 threads
  per device; the multiplexed plane a half dozen total.

* **fleet scale** (1000 devices, aio): churn with one slow device
  (acks deferred 250 ms) and per-device FIFO verified *at the
  receivers* via batch sequence ranges.  Isolation is asserted two
  ways, because in CPython any single-loop plane pays an O(fleet)
  per-wave serialization cost (~0.2 ms/device of encode+send under the
  GIL) that no implementation can hide at four orders of magnitude:

  - at 10 devices — where wave cost is negligible — healthy-device
    p99 end-to-end latency with a slow peer present stays within 2x of
    the 10-device no-slow baseline (a small absolute floor absorbs
    sub-10 ms percentile jitter on shared CI boxes);
  - at 1000 devices the comparison is differential: healthy-device
    p99 with the slow device present stays within 2x of the same-size
    fleet without it, while the slow device's own p99 exceeds its ack
    delay.  A head-of-line leak (one 250 ms ack stalling the loop)
    fails both.
"""

import json
import threading
import time

from benchmarks.conftest import emit, report
from repro.analysis.stats import percentile
from repro.core.controller import NerpaController
from repro.core.pipeline import nerpa_build
from repro.mgmt.database import Database
from repro.mgmt.schema import simple_schema
from repro.net import RetryPolicy
from repro.net.aio import Reactor
from repro.p4runtime.aio_client import AioP4RuntimeClient
from repro.p4runtime.client import P4RuntimeClient
from repro.p4runtime.farm import DeviceFarm
from repro.workloads.churn import robotron_churn

N_PORTS = 32
N_VLANS = 16
N_EVENTS = 24
FARM_REACTORS = 8
SLOW_DELAY = 0.25

FAST = RetryPolicy(
    connect_timeout=5.0,
    call_timeout=30.0,
    max_reconnect_attempts=100,
    base_delay=0.01,
    max_delay=0.1,
)

SCHEMA = simple_schema(
    "net", {"PortCfg": {"port": "integer", "out_port": "integer"}}
)

P4 = """
header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
struct headers_t { eth_t eth; }
struct meta_t { bit<1> pad; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
         inout standard_metadata_t std) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control Ing(inout headers_t hdr, inout meta_t m,
            inout standard_metadata_t std) {
    action forward(bit<16> port) { std.egress_spec = port; }
    action drop() { mark_to_drop(); }
    table patch {
        key = { std.ingress_port : exact; }
        actions = { forward; drop; }
        default_action = drop();
    }
    apply { patch.apply(); }
}
"""

RULES = (
    "Patch(p as bit<16>, PatchActionForward{o as bit<16>}) "
    ":- PortCfg(_, p, o)."
)


def _rss_mb() -> float:
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    return 0.0


def apply_event(db, event) -> None:
    """One churn event as a management transaction (E5's translation)."""
    if event.kind == "add_port":
        db.transact(
            [
                {
                    "op": "insert",
                    "table": "PortCfg",
                    "row": {"port": event.port, "out_port": event.vlan},
                }
            ]
        )
    elif event.kind == "del_port":
        db.transact(
            [
                {
                    "op": "delete",
                    "table": "PortCfg",
                    "where": [["port", "==", event.port]],
                }
            ]
        )
    else:  # retag_port / move_port
        db.transact(
            [
                {
                    "op": "update",
                    "table": "PortCfg",
                    "where": [["port", "==", event.port]],
                    "row": {"out_port": event.vlan},
                }
            ]
        )


class Fleet:
    """One controller + farm pairing on the chosen apply plane."""

    def __init__(self, n_devices, plane, slow=None, slow_delay=SLOW_DELAY):
        self.n_devices = n_devices
        self.plane = plane
        self.slow = slow
        project = nerpa_build(SCHEMA, RULES, P4)
        self.db = Database(project.schema)
        self.farm = DeviceFarm(n_devices, n_reactors=FARM_REACTORS).start()
        if slow is not None:
            self.farm.set_ack_delay(slow, slow_delay)
        host, port = self.farm.address
        self.reactor = None
        if plane == "aio":
            self.reactor = Reactor("bench-f1").start()
            self.clients = [
                AioP4RuntimeClient(
                    host, port, self.reactor, policy=FAST, device_hint=i
                )
                for i in range(n_devices)
            ]
            self.controller = NerpaController(
                project, self.db, self.clients, reactor=self.reactor
            )
        else:
            self.clients = []
            for i in range(n_devices):
                client = P4RuntimeClient(host, port, policy=FAST)
                # The classic client has no device_hint; route this
                # connection to farm device i by hand (fault-free
                # bench, so a one-shot bind is enough).
                client.conn.call("bind_device", [i])
                self.clients.append(client)
            self.controller = NerpaController(
                project, self.db, self.clients, apply_plane="threads"
            )
        self.controller.start()

    def run_churn(self, events) -> dict:
        peak_threads = threading.active_count()
        started = time.perf_counter()
        for event in events:
            apply_event(self.db, event)
            self.controller.drain(timeout=300.0)
            peak_threads = max(peak_threads, threading.active_count())
        wall = time.perf_counter() - started

        healthy_e2e, healthy_io = [], []
        slow_e2e, slow_io = [], []
        for i, device in enumerate(self.controller.devices):
            if i == self.slow:
                slow_e2e += device.latencies
                slow_io += device.io_latencies
            else:
                healthy_e2e += device.latencies
                healthy_io += device.io_latencies
        states = {
            json.dumps(d.table_snapshot(), sort_keys=True)
            for d in self.farm.devices
        }
        return {
            "plane": self.plane,
            "n_devices": self.n_devices,
            "wall": wall,
            "events_per_s": len(events) / wall if wall else 0.0,
            "peak_threads": peak_threads,
            "rss_mb": _rss_mb(),
            "batches": self.farm.total_batches(),
            "fifo_violations": self.farm.total_fifo_violations(),
            "converged": len(states) == 1,
            "nonempty": bool(self.farm.devices[0].tables),
            "healthy_p50": percentile(healthy_e2e, 50),
            "healthy_p99": percentile(healthy_e2e, 99),
            "healthy_io_p99": percentile(healthy_io, 99),
            "slow_p99": percentile(slow_e2e, 99) if slow_e2e else 0.0,
            "slow_io_p99": percentile(slow_io, 99) if slow_io else 0.0,
        }

    def close(self) -> None:
        self.controller.stop()
        for client in self.clients:
            client.close()
        self.farm.stop()
        if self.reactor is not None:
            self.reactor.stop()


def run_plane(n_devices, plane, events, slow=None, slow_delay=SLOW_DELAY):
    fleet = Fleet(n_devices, plane, slow=slow, slow_delay=slow_delay)
    try:
        return fleet.run_churn(events)
    finally:
        fleet.close()


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}"


def _row(stats: dict, label: str):
    return (
        label,
        stats["n_devices"],
        f"{stats['wall']:.2f}",
        f"{stats['events_per_s']:.1f}",
        stats["peak_threads"],
        f"{stats['rss_mb']:.0f}",
        _ms(stats["healthy_p99"]),
        _ms(stats["slow_p99"]),
        stats["fifo_violations"],
    )


_COLUMNS = (
    "run",
    "devices",
    "wall s",
    "events/s",
    "peak threads",
    "rss MB",
    "healthy p99 ms",
    "slow p99 ms",
    "fifo viol",
)


def test_f1_threaded_vs_multiplexed(benchmark, bench_seed, require_nofile):
    """100 devices, same churn, both planes: the thread-count headline."""
    require_nofile(1024)
    n_devices = 100
    events = list(
        robotron_churn(N_PORTS, N_VLANS, N_EVENTS, seed=bench_seed)
    )

    threaded = run_plane(n_devices, "threads", events)
    multiplexed = benchmark.pedantic(
        lambda: run_plane(n_devices, "aio", events),
        rounds=1,
        iterations=1,
    )

    report(
        "F1a — apply plane comparison (100 devices, Robotron churn)",
        [_row(threaded, "threads"), _row(multiplexed, "aio")],
        _COLUMNS,
    )

    for stats in (threaded, multiplexed):
        assert stats["converged"] and stats["nonempty"], stats
        assert stats["batches"] >= n_devices
    # Receiver-side FIFO (seq ranges ride only the async envelope).
    assert multiplexed["fifo_violations"] == 0
    emit(
        "f1", "multiplexed_peak_threads_100dev", "threads",
        multiplexed["peak_threads"], threshold=24,
    )
    # The structural claim: ~3 OS threads per device vs a fixed handful.
    assert threaded["peak_threads"] >= n_devices
    assert multiplexed["peak_threads"] <= 24
    # And multiplexing must not cost material throughput.
    assert multiplexed["wall"] <= threaded["wall"] * 3 + 1.0


def test_f1_fleet_scale_1000(benchmark, bench_seed, require_nofile):
    """1000 devices through the multiplexed plane, one slow device."""
    # Two sockets per device in this process, plus interpreter overhead.
    require_nofile(4096)
    n_devices = 1000
    slow = 7
    events = list(
        robotron_churn(N_PORTS, N_VLANS, N_EVENTS, seed=bench_seed)
    )

    # 10-device runs: the baseline, and isolation where per-wave
    # serialization cost is negligible.
    base10 = run_plane(10, "aio", events)
    iso10 = run_plane(10, "aio", events, slow=0, slow_delay=0.05)
    # Same-size reference fleet for the differential isolation check.
    ref1000 = run_plane(n_devices, "aio", events)
    fleet = benchmark.pedantic(
        lambda: run_plane(n_devices, "aio", events, slow=slow),
        rounds=1,
        iterations=1,
    )

    report(
        "F1b — fleet scale (multiplexed plane, slow device deferred acks)",
        [
            _row(base10, "10 baseline"),
            _row(iso10, "10 +slow(50ms)"),
            _row(ref1000, "1000 baseline"),
            _row(fleet, "1000 +slow(250ms)"),
        ],
        _COLUMNS,
    )

    # The acceptance bar: the churn completes at fleet scale with
    # per-device FIFO verified at the receivers...
    assert fleet["converged"] and fleet["nonempty"]
    assert fleet["batches"] >= n_devices
    assert fleet["fifo_violations"] == 0
    emit(
        "f1", "fleet_1000_peak_threads", "threads",
        fleet["peak_threads"], threshold=32,
    )
    assert fleet["peak_threads"] <= 32  # not one thread per device

    # ...and a slow device degrades only its own queue.  At 10 devices
    # healthy p99 stays within 2x of the 10-device baseline (10 ms
    # floor: sub-10 ms percentiles jitter on shared machines; a
    # head-of-line leak of the 50 ms ack delay clears it by 5x).
    assert iso10["slow_p99"] >= 0.05
    assert iso10["healthy_p99"] <= max(2.0 * base10["healthy_p99"], 0.010)

    # At 1000 devices every wave pays ~0.2 ms/device of GIL-bound
    # encode+send whatever the plane does, so the slow-device check is
    # differential against the same-size fleet: one stalled 250 ms ack
    # leaking into the shared loop would blow healthy p99 past 2x.
    assert fleet["slow_p99"] >= SLOW_DELAY
    assert fleet["healthy_p99"] <= 2.0 * max(
        ref1000["healthy_p99"], 0.050
    )
