"""A2 — ablation: DRed vs full-fixpoint recomputation for recursion.

Recursive strata handle deletions with delete-rederive (DRed).  The
ablation (``recursive_mode="recompute"``) re-runs the whole fixpoint on
every transaction.  On a large graph with single-edge deltas, DRed's
cost tracks the affected region; recomputation tracks the graph.
"""

import time

from benchmarks.conftest import emit, report
from repro.dlog import compile_program
from repro.workloads.topology import random_tree

PROGRAM = """
input relation GivenLabel(n: bigint, label: string)
input relation Edge(a: bigint, b: bigint)
output relation Label(n: bigint, label: string)
Label(n, l) :- GivenLabel(n, l).
Label(b, l) :- Label(a, l), Edge(a, b).
"""

SIZES = [500, 2000]
N_DELTAS = 10


def _measure(mode, n_nodes):
    runtime = compile_program(PROGRAM, recursive_mode=mode).start()
    edges = random_tree(n_nodes, seed=21)
    runtime.transaction(inserts={"Edge": edges, "GivenLabel": [(0, "r")]})
    sample = edges[-N_DELTAS:]
    started = time.perf_counter()
    for a, b in sample:
        runtime.transaction(deletes={"Edge": [(a, b)]})
        runtime.transaction(inserts={"Edge": [(a, b)]})
    latency = (time.perf_counter() - started) / (2 * len(sample))
    return latency, runtime


def run_ablation():
    rows = []
    for n_nodes in SIZES:
        dred, rt_dred = _measure("dred", n_nodes)
        recompute, rt_full = _measure("recompute", n_nodes)
        assert rt_dred.dump("Label") == rt_full.dump("Label")
        rows.append((n_nodes - 1, dred, recompute))
    return rows


def test_a2_dred_vs_recompute(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    report(
        "A2: per-edge-update latency in the recursive stratum",
        [
            (n, f"{d * 1e3:.2f} ms", f"{r * 1e3:.2f} ms", f"{r / d:.0f}x")
            for n, d, r in rows
        ],
        ["edges", "DRed", "recompute", "speedup"],
    )

    # DRed wins by orders of magnitude on localized changes, and the
    # recompute cost (but not DRed's) tracks the graph size.
    small_gain = rows[0][2] / rows[0][1]
    large_gain = rows[-1][2] / rows[-1][1]
    emit(
        "a2", "dred_vs_recompute_largest", "speedup_x",
        round(large_gain, 1), threshold=20,
    )
    assert small_gain > 20
    assert large_gain > 20
    recompute_growth = rows[-1][2] / rows[0][2]
    assert recompute_growth > 2
