"""C1 — warm restart from a checkpoint vs cold recompute.

A controller restart used to mean recomputing the whole dataflow from
the management snapshot and full-syncing every device.  With
checkpointing, restart cost is O(serialized state): unpickle the input
Z-sets, arrangements, and support counts, and skip the derivation
entirely.

Workload: E3's load-balancer shape (20 lbs x 50 backends x 8 switches
= 8000 derived NAT entries) — the cold start this paper calls out as
the engine's worst case, which is exactly where a restart hurts most.

Cold = compile + derive the 8000 entries from the input rows.
Warm = compile + load the checkpoint file + restore.  The warm path
includes the full disk round trip (save is reported separately); the
acceptance bar is warm >= 5x faster than cold.
"""

import time

from benchmarks.conftest import emit, report
from repro.dlog import compile_program
from repro.dlog.checkpoint import (
    CheckpointStore,
    load_checkpoint,
    save_checkpoint,
)
from repro.workloads.loadbalancer import LB_DLOG_PROGRAM, LoadBalancerWorkload

WORKLOAD = dict(n_lbs=20, backends_per_lb=50, n_switches=8)


def cold_start():
    workload = LoadBalancerWorkload(**WORKLOAD)
    vips, attach = workload.cold_start_rows()
    started = time.perf_counter()
    runtime = compile_program(LB_DLOG_PROGRAM).start()
    runtime.transaction(inserts={"LbVip": vips, "LbSwitch": attach})
    return time.perf_counter() - started, runtime


def warm_start(path):
    started = time.perf_counter()
    data = load_checkpoint(path)
    runtime = compile_program(LB_DLOG_PROGRAM).start(checkpoint=data)
    elapsed = time.perf_counter() - started
    assert runtime.restored
    return elapsed, runtime


def test_c1_warm_restart_vs_cold(benchmark, tmp_path):
    cold_seconds, runtime = cold_start()
    entries = len(runtime.dump("NatEntry"))
    assert entries == LoadBalancerWorkload(**WORKLOAD).derived_entries

    path = str(tmp_path / "engine.ckpt")
    save_started = time.perf_counter()
    size = save_checkpoint(path, runtime.checkpoint())
    save_seconds = time.perf_counter() - save_started

    warm_seconds, restored = benchmark.pedantic(
        warm_start, args=(path,), rounds=1, iterations=1
    )
    speedup = cold_seconds / max(warm_seconds, 1e-9)

    report(
        f"C1: warm restart vs cold start ({entries} derived entries)",
        [
            ("cold start", f"{cold_seconds * 1e3:.1f} ms", ""),
            ("checkpoint save", f"{save_seconds * 1e3:.1f} ms", ""),
            ("checkpoint size", f"{size / 1e6:.2f} MB", ""),
            ("warm restart", f"{warm_seconds * 1e3:.1f} ms", ""),
            ("speedup", f"{speedup:.1f}x", "target: >= 5x"),
        ],
        ["metric", "measured", "reference"],
    )

    # The restored runtime is the same dataflow, not a lookalike: same
    # derived state, and still incremental afterwards.
    assert restored.dump("NatEntry") == runtime.dump("NatEntry")
    lb0 = LoadBalancerWorkload(**WORKLOAD).lbs[0]
    restored.transaction(deletes={"LbVip": [(0, lb0[0], lb0[1][0])]})
    assert len(restored.dump("NatEntry")) == entries - WORKLOAD["n_switches"]

    emit(
        "c1", "warm_restart_vs_cold", "speedup_x",
        round(speedup, 2), threshold=5.0,
    )
    assert speedup >= 5.0


def test_c1_delta_checkpoint_cost_tracks_churn(benchmark, tmp_path):
    """Steady-state persistence: at ~1% churn per save interval, a
    delta segment must be >= 5x cheaper (bytes written) than a full
    snapshot — and the restored chain must equal the live runtime."""
    workload = LoadBalancerWorkload(**WORKLOAD)
    vips, attach = workload.cold_start_rows()
    program = compile_program(LB_DLOG_PROGRAM)
    runtime = program.start()
    runtime.transaction(inserts={"LbVip": vips, "LbSwitch": attach})

    store = CheckpointStore(
        str(tmp_path), "engine.ckpt", program.program_hash
    )
    runtime.enable_journal()
    full_started = time.perf_counter()
    full_bytes = store.save_full(runtime.checkpoint(), runtime.txn_count)
    full_seconds = time.perf_counter() - full_started

    # ~1% of the input rows churn between saves: delete + re-insert.
    churn = vips[: max(1, len(vips) // 100)]
    runtime.transaction(deletes={"LbVip": churn})
    runtime.transaction(inserts={"LbVip": churn})

    def save_delta():
        return store.save_delta(
            runtime.drain_journal(), runtime.txn_count
        )

    delta_started = time.perf_counter()
    delta_bytes = benchmark.pedantic(save_delta, rounds=1, iterations=1)
    delta_seconds = time.perf_counter() - delta_started
    ratio = full_bytes / max(delta_bytes, 1)

    # The chain round-trips: full + segment restores the live state.
    full, segments = store.load_chain(lambda f: f["txn_count"])
    restored = program.start(
        checkpoint={"delta_chain": True, "full": full, "segments": segments}
    )
    assert restored.restored
    assert restored.dump("NatEntry") == runtime.dump("NatEntry")
    assert restored.txn_count == runtime.txn_count

    report(
        f"C1: delta checkpoint at ~1% churn ({len(churn)} of "
        f"{len(vips)} input rows)",
        [
            ("full snapshot", f"{full_bytes / 1e6:.2f} MB", ""),
            ("full save time", f"{full_seconds * 1e3:.1f} ms", ""),
            ("delta segment", f"{delta_bytes / 1e3:.1f} KB", ""),
            ("delta save time", f"{delta_seconds * 1e3:.1f} ms", ""),
            ("bytes ratio", f"{ratio:.1f}x", "gate: >= 5x"),
        ],
        ["metric", "measured", "reference"],
    )
    emit(
        "c1", "delta_vs_full_checkpoint_bytes", "ratio_x",
        round(ratio, 2), threshold=5.0,
    )
    assert ratio >= 5.0
