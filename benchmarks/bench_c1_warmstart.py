"""C1 — warm restart from a checkpoint vs cold recompute.

A controller restart used to mean recomputing the whole dataflow from
the management snapshot and full-syncing every device.  With
checkpointing, restart cost is O(serialized state): unpickle the input
Z-sets, arrangements, and support counts, and skip the derivation
entirely.

Workload: E3's load-balancer shape (20 lbs x 50 backends x 8 switches
= 8000 derived NAT entries) — the cold start this paper calls out as
the engine's worst case, which is exactly where a restart hurts most.

Cold = compile + derive the 8000 entries from the input rows.
Warm = compile + load the checkpoint file + restore.  The warm path
includes the full disk round trip (save is reported separately); the
acceptance bar is warm >= 5x faster than cold.
"""

import time

from benchmarks.conftest import report
from repro.dlog import compile_program
from repro.dlog.checkpoint import load_checkpoint, save_checkpoint
from repro.workloads.loadbalancer import LB_DLOG_PROGRAM, LoadBalancerWorkload

WORKLOAD = dict(n_lbs=20, backends_per_lb=50, n_switches=8)


def cold_start():
    workload = LoadBalancerWorkload(**WORKLOAD)
    vips, attach = workload.cold_start_rows()
    started = time.perf_counter()
    runtime = compile_program(LB_DLOG_PROGRAM).start()
    runtime.transaction(inserts={"LbVip": vips, "LbSwitch": attach})
    return time.perf_counter() - started, runtime


def warm_start(path):
    started = time.perf_counter()
    data = load_checkpoint(path)
    runtime = compile_program(LB_DLOG_PROGRAM).start(checkpoint=data)
    elapsed = time.perf_counter() - started
    assert runtime.restored
    return elapsed, runtime


def test_c1_warm_restart_vs_cold(benchmark, tmp_path):
    cold_seconds, runtime = cold_start()
    entries = len(runtime.dump("NatEntry"))
    assert entries == LoadBalancerWorkload(**WORKLOAD).derived_entries

    path = str(tmp_path / "engine.ckpt")
    save_started = time.perf_counter()
    size = save_checkpoint(path, runtime.checkpoint())
    save_seconds = time.perf_counter() - save_started

    warm_seconds, restored = benchmark.pedantic(
        warm_start, args=(path,), rounds=1, iterations=1
    )
    speedup = cold_seconds / max(warm_seconds, 1e-9)

    report(
        f"C1: warm restart vs cold start ({entries} derived entries)",
        [
            ("cold start", f"{cold_seconds * 1e3:.1f} ms", ""),
            ("checkpoint save", f"{save_seconds * 1e3:.1f} ms", ""),
            ("checkpoint size", f"{size / 1e6:.2f} MB", ""),
            ("warm restart", f"{warm_seconds * 1e3:.1f} ms", ""),
            ("speedup", f"{speedup:.1f}x", "target: >= 5x"),
        ],
        ["metric", "measured", "reference"],
    )

    # The restored runtime is the same dataflow, not a lookalike: same
    # derived state, and still incremental afterwards.
    assert restored.dump("NatEntry") == runtime.dump("NatEntry")
    lb0 = LoadBalancerWorkload(**WORKLOAD).lbs[0]
    restored.transaction(deletes={"LbVip": [(0, lb0[0], lb0[1][0])]})
    assert len(restored.dump("NatEntry")) == entries - WORKLOAD["n_switches"]

    assert speedup >= 5.0
