"""E2 — incremental vs. full-recompute controller (the eBay numbers).

§2.2: eBay's hand-incremental ovn-controller "reduced latency by 3x and
CPU cost by 20x in production" versus the recompute-everything
controller.  We run the same comparison with the roles the paper
proposes: the automatically incremental engine vs. a full-recompute
controller, on a steady-state stream of single-port configuration
changes over a 2,048-port network.

Shape to reproduce: per-change latency and total CPU both improve by
well over the paper's 3x / 20x once the network is large, because
incremental work is O(change) while recompute is O(network).
"""

import time

from benchmarks.conftest import emit, report
from repro.baselines.full_recompute import FullRecomputeController
from repro.dlog import compile_program

N_PORTS = 2048
N_CHANGES = 150
N_VLANS = 8

# The snvs-style derivation, declaratively...
PROGRAM = """
input relation Port(port: bigint, vlan: bigint)
input relation Vlan(vid: bigint)
output relation InVlan(port: bigint, vlan: bigint)
output relation Flood(vlan: bigint, port: bigint)

InVlan(p, v) :- Port(p, v), Vlan(v).
Flood(v, p) :- Port(p, v), Vlan(v).
"""


def derive(config):
    """...and the same derivation for the recompute controller."""
    vlans = {v for (v,) in config.get("Vlan", set())}
    out = set()
    for port, vlan in config.get("Port", set()):
        if vlan in vlans:
            out.add(("in_vlan", port, vlan))
            out.add(("flood", vlan, port))
    return out


def _changes():
    # Steady-state stream: port re-tags (delete+insert), round-robin.
    for i in range(N_CHANGES):
        port = i % N_PORTS
        old_vlan = 1 + (port % N_VLANS)
        new_vlan = 1 + ((port + 1) % N_VLANS)
        yield port, old_vlan, new_vlan


def run_incremental():
    runtime = compile_program(PROGRAM).start()
    runtime.transaction(
        inserts={
            "Vlan": [(v,) for v in range(1, N_VLANS + 1)],
            "Port": [(p, 1 + (p % N_VLANS)) for p in range(N_PORTS)],
        }
    )
    latencies = []
    for port, old_vlan, new_vlan in _changes():
        started = time.perf_counter()
        runtime.transaction(
            deletes={"Port": [(port, old_vlan)]},
            inserts={"Port": [(port, new_vlan)]},
        )
        latencies.append(time.perf_counter() - started)
    return latencies


def run_recompute():
    controller = FullRecomputeController(derive)
    controller.apply_change(
        inserts={
            "Vlan": [(v,) for v in range(1, N_VLANS + 1)],
            "Port": [(p, 1 + (p % N_VLANS)) for p in range(N_PORTS)],
        }
    )
    latencies = []
    for port, old_vlan, new_vlan in _changes():
        started = time.perf_counter()
        controller.apply_change(
            deletes={"Port": [(port, old_vlan)]},
            inserts={"Port": [(port, new_vlan)]},
        )
        latencies.append(time.perf_counter() - started)
    return latencies


def test_e2_incremental_vs_recompute(benchmark):
    inc = benchmark.pedantic(run_incremental, rounds=1, iterations=1)
    full = run_recompute()

    inc_mean = sum(inc) / len(inc)
    full_mean = sum(full) / len(full)
    latency_gain = full_mean / inc_mean
    cpu_gain = sum(full) / sum(inc)

    report(
        f"E2: steady-state change stream ({N_PORTS} ports, {N_CHANGES} changes)",
        [
            ("incremental mean/change", f"{inc_mean * 1e6:.1f} us", ""),
            ("recompute mean/change", f"{full_mean * 1e6:.1f} us", ""),
            ("latency gain", f"{latency_gain:.1f}x", "paper (eBay): 3x"),
            ("CPU gain", f"{cpu_gain:.1f}x", "paper (eBay): 20x"),
        ],
        ["metric", "measured", "reference"],
    )

    emit(
        "e2", "incremental_latency_gain", "speedup_x",
        round(latency_gain, 2), threshold=3.0,
    )
    assert latency_gain >= 3.0
    # CPU gain equals latency gain for serial execution; the paper's
    # 20x came from a 10x larger deployment — require at least 3x here.
    assert cpu_gain >= 3.0


def test_e2_gain_grows_with_network_size(benchmark):
    """The crossover claim: the bigger the network, the bigger the win."""

    def run():
        return _gain_series()

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ngain at 64/256/1024 ports: {[f'{g:.1f}x' for g in gains]}")
    assert gains[-1] > gains[0]


def _gain_series():
    gains = []
    for n_ports in (64, 256, 1024):
        runtime = compile_program(PROGRAM).start()
        runtime.transaction(
            inserts={
                "Vlan": [(v,) for v in range(1, N_VLANS + 1)],
                "Port": [(p, 1 + (p % N_VLANS)) for p in range(n_ports)],
            }
        )
        controller = FullRecomputeController(derive)
        controller.apply_change(
            inserts={
                "Vlan": [(v,) for v in range(1, N_VLANS + 1)],
                "Port": [(p, 1 + (p % N_VLANS)) for p in range(n_ports)],
            }
        )
        inc_total = 0.0
        full_total = 0.0
        for i in range(50):
            port = i % n_ports
            old_vlan = 1 + (port % N_VLANS)
            new_vlan = 1 + ((port + 1) % N_VLANS)
            t0 = time.perf_counter()
            runtime.transaction(
                deletes={"Port": [(port, old_vlan)]},
                inserts={"Port": [(port, new_vlan)]},
            )
            inc_total += time.perf_counter() - t0
            t0 = time.perf_counter()
            controller.apply_change(
                deletes={"Port": [(port, old_vlan)]},
                inserts={"Port": [(port, new_vlan)]},
            )
            full_total += time.perf_counter() - t0
        gains.append(full_total / inc_total)
    return gains
