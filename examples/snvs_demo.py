#!/usr/bin/env python3
"""The paper's §4.3 example: snvs, the simple network virtual switch.

Demonstrates every snvs feature end-to-end through the full stack:
VLAN isolation, trunk tagging, MAC learning through the digest feedback
loop, an L2 ACL, and port mirroring — all driven purely by management-
plane writes.

Run:  python examples/snvs_demo.py
"""

from repro.apps.snvs import SnvsNetwork
from repro.p4.headers import EthernetView

A = "aa:00:00:00:00:0a"
B = "aa:00:00:00:00:0b"
EVIL = "ee:00:00:00:00:01"


def show(outputs):
    return sorted(
        (port, "tagged" if EthernetView(data).vlan is not None else "plain")
        for port, data in outputs
    )


def main():
    print("Standing up snvs (database + controller + behavioral switch)...")
    net = SnvsNetwork(n_ports=16)
    report = net.project.loc_report()
    print(
        f"  control plane: {report['dlog_rules']} hand-written rule lines, "
        f"{report['dlog_generated']} generated lines, "
        f"{report['schema_tables']} management tables\n"
    )

    print("Configuring VLANs 10 and 20, six access ports, one trunk...")
    net.add_vlan(10, "tenant A")
    net.add_vlan(20, "tenant B")
    for port in (0, 1, 2):
        net.add_access_port(port, vlan=10)
    for port in (4, 5):
        net.add_access_port(port, vlan=20)
    net.add_trunk_port(8, native_vlan=10, trunks=[10, 20])
    print(f"  in_vlan entries: {len(net.switch.table('in_vlan'))}")
    print(f"  flood groups: { {g: p for g, p in net.switch.multicast_groups.items()} }\n")

    print("A (port 0) sends to unknown B: floods VLAN 10 only")
    print("  ->", show(net.send(0, B, A)))
    print(f"  learning installed {net.fwd_entries()} forwarding entr(y/ies)")

    print("B (port 1) replies: unicast straight to A's port")
    print("  ->", show(net.send(1, A, B)), "\n")

    print("Tagged frame (VLAN 20) into the trunk: floods VLAN 20 members")
    print("  ->", show(net.send(8, A, B, vlan=20)), "\n")

    print("Blocking the EVIL mac on VLAN 10...")
    net.block_mac(10, EVIL)
    print("  EVIL's frame ->", net.send(0, B, EVIL), "(dropped)\n")

    print("Mirroring port 0 to port 15...")
    net.add_mirror(src_port=0, dst_port=15)
    print("  A sends again ->", show(net.send(0, B, A)))

    print("\nController metrics:", net.metrics())


if __name__ == "__main__":
    main()
