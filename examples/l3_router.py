#!/usr/bin/env python3
"""A static L3 router as a full-stack Nerpa program.

The paper closes by planning "bottom-up implementations of increasingly
complex network programs"; this example is the next step up from snvs:
an IPv4 router whose routing table entries use **longest-prefix match**,
derived from management-plane route rows.  It shows lpm-typed output
relations — the generated column type is a ``(value, prefix_len)``
pair — and header rewriting in the data plane.

Run:  python examples/l3_router.py
"""

from repro.core import NerpaController, nerpa_build
from repro.mgmt.database import Database
from repro.mgmt.schema import simple_schema
from repro.p4.headers import (
    ETHERTYPE_IPV4,
    EthernetView,
    ethernet,
    ipv4,
    mac_to_int,
)

SCHEMA = simple_schema(
    "router",
    {
        "StaticRoute": {
            "prefix": "string",      # dotted quad, e.g. "10.1.0.0"
            "prefix_len": "integer",
            "next_hop_mac": "integer",
            "out_port": "integer",
        }
    },
)

ROUTER_P4 = """
header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
header ipv4_t {
    bit<4>  version; bit<4> ihl; bit<8> tos; bit<16> total_len;
    bit<16> identification; bit<3> flags; bit<13> frag_offset;
    bit<8>  ttl; bit<8> protocol; bit<16> checksum;
    bit<32> src; bit<32> dst;
}
struct headers_t { eth_t eth; ipv4_t ip; }
struct meta_t { bit<1> pad; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
         inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.ethertype) {
            0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 { pkt.extract(hdr.ip); transition accept; }
}

control Ing(inout headers_t hdr, inout meta_t m,
            inout standard_metadata_t std) {
    action drop() { mark_to_drop(); }
    action route(bit<48> next_mac, bit<16> port) {
        hdr.eth.src = hdr.eth.dst;
        hdr.eth.dst = next_mac;
        hdr.ip.ttl = hdr.ip.ttl - 1;
        std.egress_spec = port;
    }
    table routes {
        key = { hdr.ip.dst : lpm; }
        actions = { route; drop; }
        default_action = drop();
        size = 16384;
    }
    apply {
        if (hdr.ip.isValid()) {
            if (hdr.ip.ttl == 0) { drop(); } else { routes.apply(); }
        } else {
            drop();
        }
    }
}
"""

# The control plane: the route table's lpm key column is a
# (value, prefix_len) pair.  parse_ip converts dotted-quad strings.
ROUTER_RULES = """
function parse_ip(s: string): bit<32> {
    parse_octets(string_split(s, "."))
}
function parse_octets(parts: Vec<string>): bit<32> {
    octet(parts, 0) * 16777216 + octet(parts, 1) * 65536 +
    octet(parts, 2) * 256 + octet(parts, 3)
}
function octet(parts: Vec<string>, i: bigint): bit<32> {
    unwrap_or(parse_int(unwrap_or(vec_at(parts, i), "0")), 0) as bit<32>
}

Routes((parse_ip(prefix), len),
       RoutesActionRoute{mac as bit<48>, port as bit<16>}) :-
    StaticRoute(_, prefix, len, mac, port).
"""

NEXT_HOP_A = "02:00:00:00:00:aa"
NEXT_HOP_B = "02:00:00:00:00:bb"
ROUTER_MAC = "02:00:00:00:00:01"
HOST_MAC = "02:00:00:00:00:02"


def send(router, dst_ip):
    frame = ethernet(
        ROUTER_MAC,
        HOST_MAC,
        ethertype=ETHERTYPE_IPV4,
        payload=ipv4("10.0.0.1", dst_ip, payload=b"ping"),
    )
    return router.inject(0, frame)


def main():
    project = nerpa_build(SCHEMA, ROUTER_RULES, ROUTER_P4)
    print("Generated route relation:")
    for line in project.generated_source.splitlines():
        if "Routes" in line:
            print(" ", line)

    db = Database(project.schema)
    router = project.new_simulator(n_ports=8)
    controller = NerpaController(project, db, [router]).start()

    print("\nInstalling routes 10.1.0.0/16 -> port 2, 10.1.2.0/24 -> port 3")
    db.transact(
        [
            {
                "op": "insert",
                "table": "StaticRoute",
                "row": {
                    "prefix": "10.1.0.0",
                    "prefix_len": 16,
                    "next_hop_mac": mac_to_int(NEXT_HOP_A),
                    "out_port": 2,
                },
            },
            {
                "op": "insert",
                "table": "StaticRoute",
                "row": {
                    "prefix": "10.1.2.0",
                    "prefix_len": 24,
                    "next_hop_mac": mac_to_int(NEXT_HOP_B),
                    "out_port": 3,
                },
            },
        ]
    )
    controller.drain()  # wait for the pipeline to program the router

    for dst in ("10.1.9.9", "10.1.2.9", "192.168.0.1"):
        outputs = send(router, dst)
        if outputs:
            ((port, data),) = outputs
            print(f"  {dst:>12} -> port {port}, next hop {EthernetView(data).dst}")
        else:
            print(f"  {dst:>12} -> dropped (no route)")

    print("\nWithdrawing the /24...")
    db.transact(
        [
            {
                "op": "delete",
                "table": "StaticRoute",
                "where": [["prefix_len", "==", 24]],
            }
        ]
    )
    controller.drain()
    ((port, _),) = send(router, "10.1.2.9")
    print(f"  10.1.2.9 now follows the /16 -> port {port}")
    assert port == 2


if __name__ == "__main__":
    main()
