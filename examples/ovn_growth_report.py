#!/usr/bin/env python3
"""Regenerate the Figure 3 series: OVN-controller growth over releases.

Prints the release table (codebase size, OpenFlow fragment count, and
the equivalent Nerpa program size) and the correlation statistic behind
the figure's visual claim that the two imperative curves "have grown at
a similar rate".

Run:  python examples/ovn_growth_report.py
"""

from repro.apps.ovn_model import correlation, simulate_growth


def main():
    points = simulate_growth()
    print(f"{'release':>8} {'year':>7} {'features':>9} "
          f"{'imperative LoC':>15} {'fragments':>10} {'nerpa LoC':>10}")
    for p in points:
        print(
            f"{p.release:>8} {p.year:>7.1f} {p.n_features:>9} "
            f"{p.imperative_loc:>15,} {p.fragments:>10,} {p.nerpa_loc:>10,}"
        )

    locs = [float(p.imperative_loc) for p in points]
    frags = [float(p.fragments) for p in points]
    final = points[-1]
    print(
        f"\ncorrelation(LoC, fragments) = {correlation(locs, frags):.4f} "
        "(Fig. 3: the curves grow together)"
    )
    print(
        f"final imperative/Nerpa size ratio = "
        f"{final.imperative_loc / final.nerpa_loc:.1f}x"
    )


if __name__ == "__main__":
    main()
