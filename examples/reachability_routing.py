#!/usr/bin/env python3
"""Recursive control plane: incremental reachability-based routing.

The paper's introduction uses graph labeling — "a standard problem for
computing forwarding tables" — as its motivating example.  This example
runs exactly that program (two rules, recursive) against a fat-tree
topology and shows that link failures and repairs do work proportional
to the *affected* labels, not to the network.

Run:  python examples/reachability_routing.py
"""

import time

from repro.dlog import compile_program
from repro.workloads.topology import fat_tree

PROGRAM = """
input relation GivenLabel(n: bigint, label: string)
input relation Edge(a: bigint, b: bigint)
output relation Label(n: bigint, label: string)

Label(n, l) :- GivenLabel(n, l).
Label(b, l) :- Label(a, l), Edge(a, b).
"""


def main():
    edges = fat_tree(8)
    nodes = {n for e in edges for n in e}
    print(f"Fat-tree k=8: {len(nodes)} switches, {len(edges)} directed links")

    runtime = compile_program(PROGRAM).start()

    started = time.perf_counter()
    result = runtime.transaction(
        inserts={
            "Edge": edges,
            "GivenLabel": [(0, "reachable-from-core0")],
        }
    )
    full = time.perf_counter() - started
    labeled = len(runtime.dump("Label"))
    print(f"Initial computation: {labeled} labels in {full * 1e3:.1f} ms\n")

    # Fail one core uplink: only labels whose sole support crossed that
    # link change.  In a fat tree there is massive path redundancy, so
    # usually *nothing* changes.
    a, b = edges[0]
    started = time.perf_counter()
    result = runtime.transaction(deletes={"Edge": [(a, b)]})
    dt = time.perf_counter() - started
    changed = sum(len(delta) for delta in result.deltas.values())
    print(
        f"Link ({a} -> {b}) failed: {changed} label change(s) "
        f"in {dt * 1e3:.2f} ms (redundant paths absorb the failure)"
    )

    started = time.perf_counter()
    runtime.transaction(inserts={"Edge": [(a, b)]})
    dt = time.perf_counter() - started
    print(f"Link repaired: {dt * 1e3:.2f} ms\n")

    # Partition a whole pod by cutting its aggregation uplinks: now many
    # labels really do disappear — still computed incrementally.
    half = 4
    n_core = half * half
    pod0_aggs = [n_core + i for i in range(half)]
    cut = [(x, y) for (x, y) in edges if x < n_core and y in pod0_aggs]
    cut += [(y, x) for (x, y) in cut]
    started = time.perf_counter()
    result = runtime.transaction(deletes={"Edge": cut})
    dt = time.perf_counter() - started
    lost = len(result.deleted("Label"))
    print(
        f"Pod 0 partitioned ({len(cut)} links): {lost} labels retracted "
        f"in {dt * 1e3:.1f} ms"
    )
    print(f"Labels remaining: {len(runtime.dump('Label'))}")


if __name__ == "__main__":
    main()
