#!/usr/bin/env python3
"""Cross-plane observability: one update-id from transact to table write.

Enables `repro.obs` in detail mode, drives a config change through the
full stack, and prints the causal trace: the management-plane transact
mints an update-id that rides through the controller sync, the engine's
incremental evaluation (with per-operator tuple counts and timings),
and the resulting P4Runtime table writes — one id, per-stage durations.
Then a data-plane packet triggers a MAC-learning digest whose feedback
transaction links back to the config change that installed the entries.

Run:  python examples/observability_demo.py
"""

from repro import obs
from repro.apps.snvs import SnvsNetwork

A = "aa:00:00:00:00:0a"
B = "aa:00:00:00:00:0b"


def main():
    obs.enable(detail=True)
    try:
        print("Standing up snvs with observability enabled (detail tier)...")
        net = SnvsNetwork(n_ports=8)

        print("Configuring VLAN 10 with two access ports...\n")
        net.add_vlan(10)
        net.add_access_port(0, vlan=10)
        net.add_access_port(1, vlan=10)

        uid = obs.TRACER.latest_update_id(name="mgmt.transact")
        print(f"Trace of the last config change (update-id {uid}):")
        print(obs.TRACER.render(uid))

        print("\nB (port 1) sends to A: the switch emits a learning digest")
        net.send(1, A, B)
        digest_span = [
            s for s in obs.TRACER.spans() if s.name == "controller.digest"
        ][-1]
        print(
            f"  digest '{digest_span.attrs['digest']}' processed as "
            f"{digest_span.update_id}, links back to config change "
            f"{digest_span.attrs['link']}"
        )
        print("  feedback trace:")
        print(obs.TRACER.render(digest_span.update_id))

        print("\nMetrics registry (Prometheus-style):")
        print(obs.REGISTRY.to_text())
    finally:
        obs.disable()
        obs.reset()


if __name__ == "__main__":
    main()
