#!/usr/bin/env python3
"""Quickstart: a three-artifact Nerpa program from scratch.

Builds the smallest meaningful full-stack program — one management
table, one rule, one P4 table — then shows the Nerpa loop closing: a
database row appears, the rule derives a table entry, the entry lands
in the behavioral switch, and packets change behavior.

Run:  python examples/quickstart.py
"""

from repro.core import NerpaController, nerpa_build
from repro.mgmt.database import Database
from repro.mgmt.schema import simple_schema
from repro.p4.headers import ethernet

# 1. The management plane: what the administrator configures.
SCHEMA = simple_schema(
    "quickstart",
    {"PortCfg": {"port": "integer", "out_port": "integer"}},
)

# 2. The data plane: how packets are processed.
P4 = """
header eth_t { bit<48> dst; bit<48> src; bit<16> ethertype; }
struct headers_t { eth_t eth; }
struct meta_t { bit<1> pad; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t m,
         inout standard_metadata_t std) {
    state start { pkt.extract(hdr.eth); transition accept; }
}

control Ingress(inout headers_t hdr, inout meta_t m,
                inout standard_metadata_t std) {
    action forward(bit<16> port) { std.egress_spec = port; }
    action drop() { mark_to_drop(); }
    table patch {
        key = { std.ingress_port : exact; }
        actions = { forward; drop; }
        default_action = drop();
    }
    apply { patch.apply(); }
}
"""

# 3. The control plane: one rule connecting them.  `Patch` (the output
# relation) and `PortCfg` (the input relation) are *generated* — the
# rule is the only hand-written control-plane code.
RULES = """
Patch(p as bit<16>, PatchActionForward{o as bit<16>}) :- PortCfg(_, p, o).
"""


def main():
    project = nerpa_build(SCHEMA, RULES, P4)
    print("Generated declarations:")
    print(project.generated_source)

    db = Database(project.schema)
    switch = project.new_simulator(n_ports=8)
    controller = NerpaController(project, db, [switch]).start()

    frame = ethernet("aa:00:00:00:00:02", "aa:00:00:00:00:01", payload=b"hi")

    print("Before configuration: packet on port 1 ->", switch.inject(1, frame))

    print("\nAdministrator patches port 1 to port 5...")
    db.transact(
        [{"op": "insert", "table": "PortCfg", "row": {"port": 1, "out_port": 5}}]
    )
    controller.drain()  # wait for the pipeline to program the switch
    print("Table entries now installed:", len(switch.table("patch")))
    outputs = switch.inject(1, frame)
    print("After configuration: packet on port 1 ->", outputs)
    assert [p for p, _ in outputs] == [5]

    print("\nAdministrator removes the patch...")
    db.transact([{"op": "delete", "table": "PortCfg", "where": []}])
    controller.drain()
    print("After removal: packet on port 1 ->", switch.inject(1, frame))

    print("\nController metrics:", controller.metrics())
    controller.stop()


if __name__ == "__main__":
    main()
